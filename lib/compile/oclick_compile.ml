(* The whole-graph datapath compiler: see oclick_compile.mli for the
   overview. The core invariant is that every compiled closure replays
   the interpreted transfer protocol (Element.base#output /
   #output_batch) step for step — mangle, quarantine check, hook report,
   delivery, containment, consecutive-fault clearing — with everything
   static resolved at compile time: the destination, the port, the
   transfer record (preallocated; its eight fields are per-connection
   constants), the hook leanness, and the presence of a mangler. *)

module Graph = Oclick_graph
module Packet = Oclick_packet.Packet
module Element = Oclick_runtime.Element
module Hooks = Oclick_runtime.Hooks
module Driver = Oclick_runtime.Driver
module Registry = Oclick_runtime.Registry
module Fdd = Oclick_fdd

type stats = {
  st_connections : int;
  st_fused : int;
  st_fallbacks : int;
  st_regions : Fdd.region list;
}

(* Stats of the most recent [install], for tools that reach compilation
   through [Driver.instantiate] (which discards the result value). *)
let last : stats option ref = ref None
let last_stats () = !last

let check_rejects graph =
  (* Conservative rejection: a direct self-loop gives fusion no edge to
     bottom out on, and the interpreted path is the honest execution of
     it. Cycles through more than one element are fine — the back edge
     falls back to dynamic dispatch. *)
  let self_loop =
    List.find_opt
      (fun (h : Graph.Router.hookup) -> h.from_idx = h.to_idx)
      (Graph.Router.hookups graph)
  in
  match self_loop with
  | Some h ->
      Error
        (Printf.sprintf "%s: self-loop [%d] -> [%d] is not compilable"
           (Graph.Router.name graph h.from_idx)
           h.from_port h.to_port)
  | None -> Ok ()

let install ?(fuse = false) (d : Driver.t) : (stats, string) result =
  let graph = Driver.graph d in
  match check_rejects graph with
  | Error _ as e -> e
  | Ok () -> (
      match Graph.Check.resolve_processing graph Registry.spec_table with
      | Error msgs -> Error (String.concat "; " msgs)
      | Ok resolved ->
          let n = Driver.size d in
          let elements = Array.init n (Driver.element_at d) in
          let hooks = Driver.hooks d in
          let lean =
            hooks.Hooks.on_transfer == Hooks.null.Hooks.on_transfer
          in
          let lean_batch =
            hooks.Hooks.on_transfer_batch == Hooks.null.Hooks.on_transfer_batch
          in
          let lean_work = hooks.Hooks.on_work == Hooks.null.Hooks.on_work in
          (* Push wiring, rebuilt the same way the driver wired it: a
             hookup whose output side resolved Push or Agnostic was
             connected via connect_output; everything else (pull wiring,
             genuinely unconnected ports) interprets as "no push
             target". *)
          let out =
            Array.init n (fun i -> Array.make elements.(i)#noutputs None)
          in
          List.iter
            (fun (h : Graph.Router.hookup) ->
              match resolved.Graph.Check.output_kind.(h.from_idx).(h.from_port) with
              | Graph.Spec.Push | Graph.Spec.Agnostic ->
                  out.(h.from_idx).(h.from_port) <- Some (h.to_idx, h.to_port)
              | Graph.Spec.Pull -> ())
            (Graph.Router.hookups graph);
          let connections = ref 0 and fused = ref 0 and fallbacks = ref 0 in
          let regions = ref [] in
          (* Per-element fused bodies, memoized; [building] marks the
             elements whose fuse is in progress so a cycle reaching back
             into one of them takes the dynamic-dispatch fallback instead
             of recursing forever. *)
          let bodies : (Packet.t -> unit) option array = Array.make n None in
          let attempted = Array.make n false in
          let building = Array.make n false in
          let conns : (Packet.t -> unit) option array array =
            Array.init n (fun i -> Array.make (Array.length out.(i)) None)
          in
          let rec body i =
            if building.(i) then None
            else if attempted.(i) then bodies.(i)
            else begin
              building.(i) <- true;
              (* Under [fuse], the cross-element FDD pass gets first
                 claim on the region rooted here: if it absorbs at least
                 one downstream element, its single decision-diagram
                 closure replaces the element's own body (member
                 elements still get their own bodies for edges entering
                 the region mid-way). Otherwise — or always, without
                 [fuse] — the element's per-element fused body applies. *)
              let fdd =
                if not fuse then None
                else
                  match
                    Fdd.build
                      {
                        Fdd.fd_elements = elements;
                        fd_out = out;
                        fd_conn = (fun j port -> conn j port);
                        fd_lean_transfer = lean;
                        fd_lean_work = lean_work;
                        fd_on_transfer = hooks.Hooks.on_transfer;
                      }
                      i
                  with
                  | Some (f, region) ->
                      regions := region :: !regions;
                      Some f
                  | None -> None
              in
              let r =
                match fdd with
                | Some _ -> fdd
                | None ->
                    (* [fc_out] resolves the connection closure at fuse
                       time, so the per-packet body chains fused
                       neighbours with a direct call — no memo lookup on
                       the hot path. Recursion is safe: resolving a
                       connection may fuse the destination, and the
                       [building] flags break cycles into dynamic
                       fallbacks. *)
                    let ctx =
                      { Element.fc_out = (fun port -> conn i port);
                        fc_lean_work = lean_work }
                    in
                    elements.(i)#fuse ctx
              in
              building.(i) <- false;
              attempted.(i) <- true;
              bodies.(i) <- r;
              if r <> None then incr fused;
              r
            end
          and conn i port =
            match conns.(i).(port) with
            | Some f -> f
            | None ->
                let f = make_conn i port in
                conns.(i).(port) <- Some f;
                f
          and make_conn i port =
            let src = elements.(i) in
            match out.(i).(port) with
            | None ->
                let reason = Printf.sprintf "unconnected output %d" port in
                fun p -> src#drop ~reason p
            | Some (j, dst_port) ->
                incr connections;
                let dst = elements.(j) in
                let quarantined, consec = dst#degrade_cells in
                let callee =
                  match body j with
                  | Some f -> f
                  | None ->
                      incr fallbacks;
                      fun p -> dst#push dst_port p
                in
                let record =
                  {
                    Hooks.tr_src_idx = src#index;
                    tr_src_class = src#code_class;
                    tr_src_port = port;
                    tr_dst_idx = dst#index;
                    tr_dst_class = dst#class_name;
                    tr_dst_port = dst_port;
                    tr_direct = src#direct_dispatch;
                    tr_pull = false;
                  }
                in
                let faulted e p =
                  dst#record_fault (Printexc.to_string e);
                  dst#drop ~reason:"element fault" p
                in
                (* One flat closure in the common lean case: quarantine
                   check, delivery with containment, fault clearing. The
                   hooked variant adds the transfer report; a mangler
                   wraps outermost. *)
                let deliver =
                  if lean then fun p ->
                    if !quarantined then
                      src#drop ~reason:"quarantined element" p
                    else begin
                      match callee p with
                      | () -> consec := 0
                      | exception e when not (Element.fatal e) -> faulted e p
                    end
                  else
                    let on_transfer = hooks.Hooks.on_transfer in
                    fun p ->
                      if !quarantined then
                        src#drop ~reason:"quarantined element" p
                      else begin
                        on_transfer record p;
                        match callee p with
                        | () -> consec := 0
                        | exception e when not (Element.fatal e) ->
                            faulted e p
                      end
                in
                (match src#mangle_fn with
                | None -> deliver
                | Some m ->
                    fun p ->
                      m p;
                      deliver p)
          in
          (* The batch twin replays output_batch: a batch of one falls
             back to the scalar connection, larger batches pay one
             quarantine check, one (preallocated) hook report, and one
             push_batch dispatch — whose interior transfers re-enter the
             compiled connections anyway. *)
          let conn_batch i port =
            let src = elements.(i) in
            let scalar = conn i port in
            match out.(i).(port) with
            | None ->
                let reason = Printf.sprintf "unconnected output %d" port in
                fun batch ->
                  let nb = Array.length batch in
                  if nb = 1 then scalar batch.(0)
                  else
                    for k = 0 to nb - 1 do
                      src#drop ~reason batch.(k)
                    done
            | Some (j, dst_port) ->
                let dst = elements.(j) in
                let quarantined, consec = dst#degrade_cells in
                let mangle = src#mangle_fn in
                let on_transfer_batch = hooks.Hooks.on_transfer_batch in
                let record =
                  {
                    Hooks.tr_src_idx = src#index;
                    tr_src_class = src#code_class;
                    tr_src_port = port;
                    tr_dst_idx = dst#index;
                    tr_dst_class = dst#class_name;
                    tr_dst_port = dst_port;
                    tr_direct = src#direct_dispatch;
                    tr_pull = false;
                  }
                in
                fun batch ->
                  let nb = Array.length batch in
                  if nb = 1 then scalar batch.(0)
                  else if nb > 0 then begin
                    (match mangle with
                    | Some m ->
                        for k = 0 to nb - 1 do
                          m batch.(k)
                        done
                    | None -> ());
                    if !quarantined then
                      for k = 0 to nb - 1 do
                        src#drop ~reason:"quarantined element" batch.(k)
                      done
                    else begin
                      if not lean_batch then on_transfer_batch record batch nb;
                      match dst#push_batch dst_port batch with
                      | () -> consec := 0
                      | exception e when not (Element.fatal e) ->
                          dst#record_fault (Printexc.to_string e);
                          for k = 0 to nb - 1 do
                            dst#drop ~reason:"element fault" batch.(k)
                          done
                    end
                  end
          in
          for i = 0 to n - 1 do
            ignore (body i)
          done;
          for i = 0 to n - 1 do
            let nout = Array.length out.(i) in
            elements.(i)#set_fused
              ~out:(Array.init nout (fun port -> conn i port))
              ~out_batch:(Array.init nout (fun port -> conn_batch i port))
          done;
          let st =
            {
              st_connections = !connections;
              st_fused = !fused;
              st_fallbacks = !fallbacks;
              st_regions = List.rev !regions;
            }
          in
          last := Some st;
          Ok st)

let register () =
  Driver.register_compiler (fun ~fuse d ->
      match install ~fuse d with Ok _ -> Ok () | Error _ as e -> e)
