lib/optim/combine.ml: Array Hashtbl List Oclick_graph Oclick_lang Printf String
