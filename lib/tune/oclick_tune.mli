(** Profile-guided autotuning over the datapath knob space.

    The deterministic testbed ({!Oclick_hw.Testbed}) is the objective
    function: every candidate configuration runs the same simulated
    traffic, so the search is reproducible — same graph, same knob
    space, same seed and budget give byte-identical tuning decisions.

    A {!config} is one point in the knob space: datapath mode
    (interpreted / compiled / FDD-fused), transfer batch size, domain
    count, SPSC ring capacity for inserted cut stages, Queue capacity
    and RED/EARLY overrides, and the runner watchdog interval. A
    {!space} declares the candidate values per knob; {!search} walks it
    with a seeded, budgeted strategy — exhaustive when the space is
    small enough, otherwise coordinate descent over a coarse per-axis
    grid followed by ±1 local refinement — and returns the best point
    over {e every} evaluation it performed, so any configuration fed in
    through [extra_starts] (e.g. the single-knob defaults a benchmark
    wants beaten) is a floor on the result.

    The measurement feedback loop: {!profile} runs the testbed once
    single-domain with an {!Oclick_obs.t} ledger and returns its
    measured per-element costs; passed back in as objective [weights],
    every multi-domain evaluation partitions by observed cycles instead
    of element counts, and {!region_shares} says which Queue-bounded
    push regions carry enough of the measured cost for whole-region
    compilation/fusion to pay off ({!fusion_worthwhile} prunes the mode
    axis when none does). *)

(** Datapath execution mode — which code path the tuned command runs. *)
type mode =
  | Interpreted  (** plain indirect dispatch *)
  | Compiled  (** whole-graph compiler ([--compile]) *)
  | Fused  (** FDD fusion inside compilation ([--fuse]) *)

val mode_name : mode -> string
(** ["interpreted"], ["compiled"], ["fused"]. *)

val mode_of_name : string -> mode option

type early = { e_min : int; e_max : int; e_prob : float }
(** A RED/EARLY drop profile for Queues: [EARLY MIN MAX P]. *)

type config = {
  c_mode : mode;
  c_batch : int;  (** transfer batch size, >= 1 *)
  c_domains : int;  (** shard count, >= 1 *)
  c_ring : int;  (** capacity of inserted cut rings, >= 1 *)
  c_queue : int;  (** Queue capacity override; 0 keeps configured *)
  c_early : early option;  (** EARLY override; [None] keeps configured *)
  c_watchdog_ms : int;
      (** runner watchdog deadline; inert in the simulated objective
          (the simulation cannot wedge) but emitted with the tuned
          command line *)
}

val describe : config -> string
(** One deterministic line, e.g.
    ["mode=fused batch=8 domains=2 ring=128 queue=1000 early=- watchdog=1000"]. *)

type space = {
  s_modes : mode list;
  s_batches : int list;
  s_domains : int list;
  s_rings : int list;
  s_queues : int list;  (** capacity candidates; 0 = keep configured *)
  s_earlies : early option list;
  s_watchdogs : int list;
}
(** Candidate values per knob. Every axis must be non-empty; the space
    is their cross product. *)

val default_space : space
(** The stock grid: all three modes, batches {1,8,32}, domains {1,2,4},
    rings {128,1024}, queue capacities {keep,1000}, no EARLY override
    vs a gentle one, watchdog {1000}. *)

val points : space -> int
(** Size of the cross product (0 if any axis is empty). *)

val single_knob_defaults : space -> config list
(** The baseline sweep a tuned result must beat: the all-defaults
    config (first candidate of every axis) plus, for each axis, the
    configs that vary only that axis — what a user flipping one flag at
    a time could find. *)

(** {2 Objective} *)

type objective

val objective :
  ?duration_ms:int ->
  ?warmup_ms:int ->
  ?drain_ms:int ->
  ?workload:Oclick_hw.Host.workload ->
  ?weights:int array ->
  platform:Oclick_hw.Platform.t ->
  graph:Oclick_graph.Router.t ->
  input_pps:int ->
  unit ->
  objective
(** The tuning objective: run [graph] on [platform] at [input_pps]
    under [workload] (default [Uniform]) in the simulated testbed.
    Window parameters default to the testbed's. [weights] are measured
    per-element costs ({!profile}) forwarded to the partitioner for
    every multi-domain evaluation. *)

type score = {
  sc_pps : float;  (** forwarded packets per second — maximized first *)
  sc_ns : float;  (** CPU ns per forwarded packet — tie-breaker *)
}

val better : score -> score -> bool
(** Strict lexicographic: more forwarded pps, or equal pps and less CPU
    per packet — so below saturation, where every loss-free config ties
    on throughput, the search still discriminates by cost. *)

val eval : objective -> config -> (score, string) result
(** Run one configuration through the testbed: the graph annotated with
    [c]'s Queue overrides ({!annotate}), the datapath in [c]'s mode
    with [c]'s batch/domains/ring, weights forwarded if the objective
    carries them. Deterministic. *)

(** {2 Search} *)

type tuned = {
  t_config : config;
  t_score : score;
  t_evals : int;  (** objective evaluations actually performed *)
  t_budget : int;  (** the evaluation budget given *)
  t_points : int;  (** size of the space searched *)
  t_exhaustive : bool;  (** whole space enumerated *)
  t_log : string list;  (** deterministic, human-readable trace *)
}

val search :
  ?seed:int ->
  ?budget:int ->
  ?exhaustive_threshold:int ->
  ?extra_starts:config list ->
  objective ->
  space ->
  (tuned, string) result
(** Tune. [budget] (default 64) caps objective evaluations; memoized
    repeats are free. If the space fits inside both the budget and
    [exhaustive_threshold] (default 32) it is enumerated outright;
    otherwise coordinate descent from a seeded start over each axis's
    {first, middle, last} candidates runs to a fixpoint, then ±1
    refinement. [extra_starts] are evaluated first (they count against
    the budget) and participate in the final argmax, so the result is
    never worse than any of them. Errors on an empty axis, a
    non-positive knob value, [budget < 1], or an objective failure —
    one clean diagnostic line each. Same inputs, same seed, same
    budget: identical [tuned] value. *)

(** {2 Emission} *)

val annotate : config -> Oclick_graph.Router.t -> Oclick_graph.Router.t
(** A copy of the graph with the chosen capacities written into element
    arguments: every Queue gets [c_queue] as its capacity (when > 0)
    and the [EARLY MIN MAX P] keyword (when [c_early] is set); other
    arguments and elements are untouched. *)

val command_line : ?input:string -> config -> string
(** The tuned invocation, e.g.
    ["oclick-run --fuse --batch 8 --domains 2 --ring-capacity 128 --watchdog-ms 1000 tuned.click"].
    Flags at their defaults are omitted; [input] defaults to
    ["tuned.click"] (the annotated config belongs in that file —
    capacities travel in the config, not on the command line). *)

(** {2 Measurement feedback} *)

val profile :
  ?duration_ms:int ->
  ?warmup_ms:int ->
  ?drain_ms:int ->
  ?workload:Oclick_hw.Host.workload ->
  platform:Oclick_hw.Platform.t ->
  graph:Oclick_graph.Router.t ->
  input_pps:int ->
  unit ->
  (int array, string) result
(** One single-domain testbed run with an observability ledger;
    returns {!Oclick_obs.cost_weights} of it — measured cost per
    element, indexed to line up with {!Oclick_parallel.Partition}'s
    [?weights]. *)

val region_shares :
  weights:int array ->
  Oclick_graph.Router.t ->
  ((int list * float) list, string) result
(** Per Queue-bounded push region ({!Oclick_parallel.Partition.regions}):
    its element indices and its share of the total measured cost,
    in region order. *)

val fusion_worthwhile :
  ?threshold:float -> (int list * float) list -> bool
(** Whether any multi-element region carries at least [threshold]
    (default 0.15) of the measured cost — the gate on keeping
    [Compiled]/[Fused] in the mode axis: whole-region compilation can
    only pay where a region worth collapsing exists. *)
