lib/optim/xform.ml: Array Hashtbl List Oclick_graph Oclick_lang Printf String
