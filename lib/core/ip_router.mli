(** Generator for the paper's reference configurations.

    {!config} produces the standards-compliant Click IP router of Figure 1
    for any number of network interfaces: per interface a [PollDevice],
    protocol [Classifier], ARP responder and querier, the ten-element IP
    forwarding path through a shared [LookupIPRoute], an output [Queue],
    and a [ToDevice] — sixteen elements on each forwarding path, as the
    paper counts them (§3).

    {!simple_config} is the paper's "Simple" configuration: device
    handling and a single packet queue per flow (§8.3).

    {!host_config} describes an end host (ARP responder + UDP sink) as a
    Click configuration, used by [click-combine] for the multiple-router
    ARP-elimination optimization (§7.2). *)

type interface = {
  if_device : string;
  if_ip : Oclick_packet.Ipaddr.t;
  if_eth : Oclick_packet.Ethaddr.t;
  if_net : Oclick_packet.Ipaddr.t;  (** subnet routed to this interface *)
  if_mask : Oclick_packet.Ipaddr.t;
}

val interface :
  device:string -> ip:string -> eth:string -> net:string -> interface
(** [net] in prefix notation, e.g. ["10.0.4.0/24"]. Raises
    [Invalid_argument] on malformed addresses. *)

val standard_interfaces : int -> interface list
(** [standard_interfaces n] builds interfaces eth0..eth(n-1) with
    addresses 10.0.[i].1/24, the addressing used throughout the tests and
    benchmarks. *)

val config : ?extra_routes:string list -> interface list -> string
(** The Figure 1 IP router, in Click language. [extra_routes] appends
    additional ["ADDR/LEN [GW] PORT"] entries to the shared routing
    table after the interface routes (which therefore win on duplicate
    prefixes) — used to load production-scale tables into the reference
    router for large-LPM experiments. *)

val simple_config : (string * string) list -> string
(** [simple_config [(in_dev, out_dev); ...]]: PollDevice -> Queue ->
    ToDevice per pair. *)

val host_config :
  ip:Oclick_packet.Ipaddr.t -> eth:Oclick_packet.Ethaddr.t -> string
(** An end host with one interface [eth0]. *)

val graph : string -> Oclick_graph.Router.t
(** Parse + flatten a generated configuration; raises [Failure] on error
    (generator output always parses). *)
