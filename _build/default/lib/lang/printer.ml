let rec compound_to_string ~indent (c : Ast.compound) =
  let pad = String.make indent ' ' in
  let buf = Buffer.create 64 in
  Buffer.add_string buf "{\n";
  if c.formals <> [] then
    Buffer.add_string buf
      (pad ^ "  " ^ String.concat ", " c.formals ^ " |\n");
  Buffer.add_string buf (body_to_string ~indent:(indent + 2) c.body);
  Buffer.add_string buf (pad ^ "}");
  Buffer.contents buf

and class_expr_to_string ~indent = function
  | Ast.Cname n -> n
  | Ast.Ccompound c -> compound_to_string ~indent c

and element_to_string_indent ~indent (e : Ast.element) =
  let cls = class_expr_to_string ~indent e.e_class in
  if String.equal e.e_config "" then
    Printf.sprintf "%s :: %s;" e.e_name cls
  else Printf.sprintf "%s :: %s(%s);" e.e_name cls e.e_config

and connection_to_string (c : Ast.connection) =
  let from_port = if c.c_from_port = 0 then "" else Printf.sprintf " [%d]" c.c_from_port in
  let to_port = if c.c_to_port = 0 then "" else Printf.sprintf "[%d] " c.c_to_port in
  Printf.sprintf "%s%s -> %s%s;" c.c_from from_port to_port c.c_to

and body_to_string ~indent (t : Ast.t) =
  let pad = String.make indent ' ' in
  let buf = Buffer.create 256 in
  List.iter
    (fun r -> Buffer.add_string buf (pad ^ "require(" ^ r ^ ");\n"))
    t.requirements;
  List.iter
    (fun (name, c) ->
      Buffer.add_string buf
        (Printf.sprintf "%selementclass %s %s\n" pad name
           (compound_to_string ~indent c)))
    t.classes;
  List.iter
    (fun e ->
      Buffer.add_string buf (pad ^ element_to_string_indent ~indent e ^ "\n"))
    t.elements;
  List.iter
    (fun c -> Buffer.add_string buf (pad ^ connection_to_string c ^ "\n"))
    t.connections;
  Buffer.contents buf

let element_to_string e = element_to_string_indent ~indent:0 e
let to_string t = body_to_string ~indent:0 t

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let dot_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' | '{' | '}' | '<' | '>' | '|' ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf c
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let dot_of_config (t : Ast.t) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph click {\n  rankdir=TB;\n  node [shape=record, fontsize=10];\n";
  List.iter
    (fun (e : Ast.element) ->
      let cfg =
        if String.length e.e_config > 40 then
          String.sub e.e_config 0 37 ^ "..."
        else e.e_config
      in
      add "  \"%s\" [label=\"{%s | %s%s}\"];\n" (dot_escape e.e_name)
        (dot_escape e.e_name)
        (dot_escape (Ast.class_name e.e_class))
        (if cfg = "" then "" else "(" ^ dot_escape cfg ^ ")"))
    t.elements;
  List.iter
    (fun (c : Ast.connection) ->
      add "  \"%s\" -> \"%s\" [taillabel=\"%d\", headlabel=\"%d\", fontsize=8];\n"
        (dot_escape c.c_from) (dot_escape c.c_to) c.c_from_port c.c_to_port)
    t.connections;
  add "}\n";
  Buffer.contents buf

let html_of_config (t : Ast.t) =
  let buf = Buffer.create 1024 in
  let add = Buffer.add_string buf in
  add "<!DOCTYPE html>\n<html><head><title>Click configuration</title>\n";
  add "<style>body{font-family:monospace} .cls{color:#056} \
       .cfg{color:#850} td{padding:0 8px}</style></head><body>\n";
  add "<h1>Click configuration</h1>\n<h2>Elements</h2>\n<table>\n";
  List.iter
    (fun (e : Ast.element) ->
      add
        (Printf.sprintf
           "<tr><td><a id=\"e-%s\"></a><b>%s</b></td>\
            <td class=\"cls\">%s</td><td class=\"cfg\">%s</td></tr>\n"
           (html_escape e.e_name) (html_escape e.e_name)
           (html_escape (Ast.class_name e.e_class))
           (html_escape e.e_config)))
    t.elements;
  add "</table>\n<h2>Connections</h2>\n<ul>\n";
  List.iter
    (fun (c : Ast.connection) ->
      add
        (Printf.sprintf
           "<li><a href=\"#e-%s\">%s</a> [%d] &rarr; [%d] \
            <a href=\"#e-%s\">%s</a></li>\n"
           (html_escape c.c_from) (html_escape c.c_from) c.c_from_port
           c.c_to_port (html_escape c.c_to) (html_escape c.c_to)))
    t.connections;
  add "</ul>\n</body></html>\n";
  Buffer.contents buf
