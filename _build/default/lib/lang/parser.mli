(** Parser for the Click configuration language.

    This is the tool-side parser of the paper (§5.2): it parses
    configurations without knowing which identifiers name element classes,
    accepts unknown classes, and preserves compound-element abstractions
    for the optimizers to elaborate. *)

val parse : string -> (Ast.t, string) result
(** Parse a configuration. The error string includes a line number. *)

val parse_exn : string -> Ast.t
(** Like {!parse} but raises [Failure]. *)

val parse_file : string -> (Ast.t, string) result
(** Parse the contents of a file (or of the ["config"] member if the file
    is an oclick archive). *)
