lib/elements/arp.ml: Args E Ethaddr Fun Hashtbl Headers Ipaddr List Option Packet Prelude String
