(* Overload resilience: offered-load vs goodput curves under adversarial
   traffic (the robustness evaluation for the bounded-state + admission
   control + watchdog work).

   Each workload shapes the same mean offered load differently:
   - uniform:   the baseline even flows — the plateau every other curve
                is judged against.
   - scan:      destinations sweep 16 addresses per flow; only one
                resolves, so the ARP querier sees a sustained miss storm
                and its bounded pending FIFOs / aged cache do the work.
   - arp-storm: every 4th frame is an ARP request for the router's own
                address, amplifying the control path with reply traffic.
   - burst:     heavy-tailed ON/OFF (bounded Pareto, mean 64, alpha 1.5)
                at wire speed in-burst — the queue/admission test.

   The resilience claim is a *plateau*: as offered load rises past
   saturation, goodput must flatten, not collapse — the router sheds the
   excess as cheap, accounted drops instead of melting down. Every run
   still passes the testbed's exact conservation check (births =
   deliveries + drops + residual, evictions and pending included);
   [Testbed.run] returns [Error] on any leak, so a row printing at all
   certifies the ledger balanced. *)

module Testbed = Oclick_hw.Testbed
module Platform = Oclick_hw.Platform
module Host = Oclick_hw.Host

let nports = 8
let platform = { Platform.p2 with Platform.p_nports = nports }

let flows =
  List.init nports (fun i ->
      { Testbed.fl_src = i; Testbed.fl_dst = (i + 4) mod nports })

let graph = Common.base_graph nports

let workloads =
  [
    ("uniform", Host.Uniform);
    ("scan", Host.Scan 16);
    ("arp-storm", Host.Arp_storm 4);
    ("burst", Host.Burst (64, 1.5));
  ]

let domain_counts = [ 1; 4 ]

let measure ~workload ~domains ~input_pps ~duration_ms ~warmup_ms =
  match
    Testbed.run ~duration_ms ~warmup_ms ~platform ~graph ~flows ~domains
      ~workload ~input_pps ()
  with
  | Ok r -> r
  | Error e -> failwith ("overload bench: " ^ e)

let total_drops (o : Testbed.outcome_counts) =
  o.Testbed.oc_fifo_overflow + o.Testbed.oc_missed_frame
  + o.Testbed.oc_queue_drop + o.Testbed.oc_element_fault
  + o.Testbed.oc_other_drop

let run () =
  Common.section "overload: goodput under adversarial load";
  let loads =
    if !Common.smoke then [ 400_000; 1_600_000 ]
    else [ 250_000; 500_000; 1_000_000; 2_000_000 ]
  in
  let duration_ms, warmup_ms = if !Common.smoke then (5, 3) else (40, 20) in
  Printf.printf
    "IP router (%d interfaces), %d crossing flows; conservation checked \
     exactly on every run\n\n"
    nports (List.length flows);
  Printf.printf "%-10s %8s %12s %12s %10s %10s\n" "workload" "domains"
    "offered pps" "goodput pps" "drops" "util";
  let curves =
    List.concat_map
      (fun (wname, workload) ->
        List.map
          (fun domains ->
            let points =
              List.map
                (fun input_pps ->
                  let r =
                    measure ~workload ~domains ~input_pps ~duration_ms
                      ~warmup_ms
                  in
                  Printf.printf "%-10s %8d %12d %12.0f %10d %9.2f\n" wname
                    domains input_pps r.Testbed.r_forwarded_pps
                    (total_drops r.Testbed.r_outcomes)
                    r.Testbed.r_cpu_utilization;
                  (input_pps, r))
                loads
            in
            print_newline ();
            (wname, domains, points))
          domain_counts)
      workloads
  in
  (* The plateau check: goodput at the highest offered load, as a
     fraction of the best goodput anywhere on the curve. A resilient
     datapath holds >= 0.7 — overload costs something (drop work is not
     free) but must not collapse throughput. *)
  let plateau points =
    let goodput (_, r) = r.Testbed.r_forwarded_pps in
    let best = List.fold_left (fun m p -> Float.max m (goodput p)) 0.0 points in
    let last = goodput (List.nth points (List.length points - 1)) in
    if best > 0.0 then last /. best else 1.0
  in
  Printf.printf "%-10s %8s %10s\n" "workload" "domains" "plateau";
  List.iter
    (fun (wname, domains, points) ->
      let p = plateau points in
      Printf.printf "%-10s %8d %9.2f %s\n" wname domains p
        (if p >= 0.7 then "(holds)" else "(COLLAPSED)"))
    curves;
  Common.write_json ~section:"overload"
    (Common.J_obj
       [
         ("section", Common.J_string "overload");
         ("ports", Common.J_int nports);
         ("duration_ms", Common.J_int duration_ms);
         ("smoke", Common.J_bool !Common.smoke);
         ( "loads",
           Common.J_list (List.map (fun l -> Common.J_int l) loads) );
         ( "curves",
           Common.J_list
             (List.map
                (fun (wname, domains, points) ->
                  Common.J_obj
                    [
                      ("workload", Common.J_string wname);
                      ("domains", Common.J_int domains);
                      ("plateau", Common.J_float (plateau points));
                      ( "points",
                        Common.J_list
                          (List.map
                             (fun (input_pps, (r : Testbed.result)) ->
                               Common.J_obj
                                 [
                                   ("offered_pps", Common.J_int input_pps);
                                   ( "goodput_pps",
                                     Common.J_float r.Testbed.r_forwarded_pps
                                   );
                                   ( "drops",
                                     Common.J_int
                                       (total_drops r.Testbed.r_outcomes) );
                                   ( "cpu_utilization",
                                     Common.J_float r.Testbed.r_cpu_utilization
                                   );
                                   ( "conserved",
                                     (* Ok from Testbed.run implies the
                                        ledger balanced exactly. *)
                                     Common.J_bool true );
                                 ])
                             points) );
                    ])
                curves) );
       ])
