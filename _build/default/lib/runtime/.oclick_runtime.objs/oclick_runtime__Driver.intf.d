lib/runtime/driver.mli: Element Hooks Netdevice Oclick_graph Oclick_packet
