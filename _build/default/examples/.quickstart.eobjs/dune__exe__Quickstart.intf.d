examples/quickstart.mli:
