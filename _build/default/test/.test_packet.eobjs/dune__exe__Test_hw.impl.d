test/test_hw.ml: Alcotest List Oclick Oclick_elements Oclick_hw Oclick_packet Oclick_runtime Printf
