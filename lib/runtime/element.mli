(** The element framework.

    Element classes are OCaml classes — the direct analogue of Click's C++
    element classes, including real dynamic dispatch on [push]/[pull].
    A class provides its external specification (port counts, processing
    code, flow code: paper §5.3) as methods; the registry extracts it for
    the optimizers.

    Packet transfers go through {!base.output} and {!base.input_pull},
    which report each transfer to the installed {!Hooks.t} — carrying the
    source's {e code class} (shared call sites share branch-predictor
    state, paper §3) and whether the element was specialized by
    [click-devirtualize] (direct calls). *)

type init_ctx = {
  ic_graph : Oclick_graph.Router.t;
  ic_element : int -> t;  (** element by graph index *)
  ic_find : string -> t option;  (** element by name *)
  ic_device : string -> Netdevice.t option;
  ic_index : int;  (** the index of the element being initialized *)
}

(** Context handed to {!base.fuse} by the graph compiler
    ({!Oclick_compile}): [fc_out port] is the compiled connection closure
    for the element's output [port] — calling it has exactly the
    semantics of [output port] on the compiled path (mangle, quarantine,
    hook report, containment). [fc_lean_work] is whether the installed
    hooks ignore {!Hooks.t.on_work} charges, so a fused body may
    specialize the charge away. *)
and fuse_ctx = {
  fc_out : int -> Oclick_packet.Packet.t -> unit;
  fc_lean_work : bool;
}

(* The full element interface (the object type every element is coerced
   to). *)
and t = <
  name : string;
  class_name : string;
  port_count : string;
  processing : string;
  flow_code : string;
  code_class : string;
  set_code_class : string -> unit;
  direct_dispatch : bool;
  set_direct_dispatch : bool -> unit;
  configure : string -> (unit, string) result;
  initialize : init_ctx -> (unit, string) result;
  index : int;
  set_index : int -> unit;
  set_hooks : Hooks.t -> unit;
  set_nports : inputs:int -> outputs:int -> unit;
  ninputs : int;
  noutputs : int;
  connect_output : int -> t -> int -> unit;
  connect_input : int -> t -> int -> unit;
  push : int -> Oclick_packet.Packet.t -> unit;
  pull : int -> Oclick_packet.Packet.t option;
  push_batch : int -> Oclick_packet.Packet.t array -> unit;
  pull_batch : int -> Oclick_packet.Packet.t array -> int;
  output : int -> Oclick_packet.Packet.t -> unit;
  input_pull : int -> Oclick_packet.Packet.t option;
  batch_size : int;
  set_batch_size : int -> unit;
  set_pool : Oclick_packet.Packet.Pool.t option -> unit;
  fuse : fuse_ctx -> (Oclick_packet.Packet.t -> unit) option;
  region_sem : Region.sem option;
  set_fused :
    out:(Oclick_packet.Packet.t -> unit) array ->
    out_batch:(Oclick_packet.Packet.t array -> unit) array ->
    unit;
  degrade_cells : bool ref * int ref;
  mangle_fn : (Oclick_packet.Packet.t -> unit) option;
  wants_task : bool;
  run_task : bool;
  stats : (string * int) list;
  read_handler : string -> string option;
  write_handler : string -> string -> (unit, string) result;
  is_quarantined : bool;
  fault_count : int;
  set_quarantine_threshold : int -> unit;
  set_mangle : (Oclick_packet.Packet.t -> unit) option -> unit;
  set_clock : (unit -> int) -> unit;
  record_fault : string -> unit;
  drop : reason:string -> Oclick_packet.Packet.t -> unit;
  note_ok : unit >

(** Verdict of a {!simple_action} element's in-place fast path. All
    three constructors are immediates, so keep/drop travels without
    boxing a [Packet.t option] per packet on the batched and fused
    transfer paths; [V_defer] routes through the element's
    option-returning [action]. *)
type verdict = V_keep | V_drop | V_defer

class virtual base : string -> object
  val mutable clock : unit -> int
  (** Nanosecond time source for aging element state
      ({!Aged_table}); installed driver-wide via {!set_clock}. The
      default never advances ([fun () -> 0]), so state never ages
      unless a clock is provided. *)

  method name : string
  method virtual class_name : string

  method code_class : string
  (** The class whose {e code} performs this element's packet transfers;
      equals {!class_name} unless devirtualization installed a specialized
      class. Transfer call sites are keyed by this. *)

  method set_code_class : string -> unit
  method direct_dispatch : bool
  method set_direct_dispatch : bool -> unit

  (** {2 Specification (overridden per class)} *)

  method port_count : string
  (** Default ["1/1"]. *)

  method processing : string
  (** Default ["a/a"]. *)

  method flow_code : string
  (** Default ["x/x"]. *)

  (** {2 Lifecycle} *)

  method configure : string -> (unit, string) result
  (** Parse the configuration string; default accepts only [""] . *)

  method initialize : init_ctx -> (unit, string) result

  (** {2 Plumbing (managed by the driver)} *)

  method index : int
  method set_index : int -> unit
  method set_hooks : Hooks.t -> unit
  method set_nports : inputs:int -> outputs:int -> unit
  method ninputs : int
  method noutputs : int
  method connect_output : int -> t -> int -> unit
  method connect_input : int -> t -> int -> unit

  (** {2 Packet handling (overridden per class)} *)

  method push : int -> Oclick_packet.Packet.t -> unit
  (** Default: counts the packet as dropped. *)

  method pull : int -> Oclick_packet.Packet.t option
  (** Default: [None]. *)

  (** {2 Batched transfer path}

      The hot-path alternative to per-packet [push]/[pull]: a whole
      array of packets crosses a hookup in one dynamic dispatch and one
      {!Hooks.t.on_transfer_batch} report. Semantics are preserved — the
      default implementations loop the scalar methods under the same
      fault containment, so every element class works under batching;
      hot elements override them with loops that hoist config lookups,
      hook reporting, and dispatch out of the per-packet body.

      Contract: [push_batch] implementations contain their own
      per-packet faults (use [guard], or pattern-match exceptions as the
      default does) — drop reasons match the scalar path (["element
      fault"], ["quarantined element"]), so per-reason drop totals are
      identical in both modes. The batch array is scratch owned by the
      callee once handed over: callers must not rely on its contents
      after [push_batch]/[output_batch] returns. *)

  method push_batch : int -> Oclick_packet.Packet.t array -> unit
  (** Process a whole batch arriving on a port. Default: loops the
      scalar {!push} with per-packet fault containment. *)

  method pull_batch : int -> Oclick_packet.Packet.t array -> int
  (** Fill-style batched pull: write up to [Array.length dst] packets
      into the array from the front and return how many. Default: loops
      the scalar {!pull}, stopping at the first refusal. *)

  method batch_size : int
  (** Preferred batch size for this element's task loops; 1 = scalar. *)

  method set_batch_size : int -> unit
  (** Set by the driver ([clamped to >= 1]). *)

  method set_pool : Oclick_packet.Packet.Pool.t option -> unit
  (** Install a recycling packet pool; source elements then allocate
      through it (see {!Oclick_packet.Packet.Pool}). *)

  (** {2 Graph compilation}

      The runtime graph compiler ({!Oclick_compile}) replaces interpreted
      dispatch with direct-call closures. [fuse] is the element's side of
      the bargain: return a closure with exactly the semantics of [push]
      (for {e any} input port), transferring downstream through
      [ctx.fc_out] instead of {!output}. Elements whose [push] is
      port-sensitive, stateful across ports, or otherwise not expressible
      this way keep the default ([None]) and the compiler falls back to
      dynamic dispatch into them — compilation never changes semantics,
      only the call path. *)

  method fuse : fuse_ctx -> (Oclick_packet.Packet.t -> unit) option
  (** Default [None]: not fusable, the compiler calls [push] dynamically. *)

  method region_sem : Region.sem option
  (** The element's push semantics in match-action terms, for the FDD
      cross-element fusion pass (see {!Region}). Default [None]: the
      element is opaque to fusion and ends any region reaching it. *)

  method set_fused :
    out:(Oclick_packet.Packet.t -> unit) array ->
    out_batch:(Oclick_packet.Packet.t array -> unit) array ->
    unit
  (** Install compiled connection closures, one per output port;
      {!output} and {!output_batch} then jump straight into them. Called
      only by the graph compiler. *)

  method degrade_cells : bool ref * int ref
  (** The quarantine flag and consecutive-fault counter as raw cells, so
      compiled connections can check and clear them without per-packet
      method dispatch. *)

  method mangle_fn : (Oclick_packet.Packet.t -> unit) option
  (** The installed in-flight fault injector (see {!set_mangle}). *)

  method wants_task : bool
  (** Whether the scheduler should call {!run_task}; default [false]. *)

  method run_task : bool
  (** One scheduler quantum; returns whether any work was done. *)

  method stats : (string * int) list
  (** Named counters for tests and reports; default []. *)

  method read_handler : string -> string option
  (** Click-style read handlers. The default exposes every {!stats}
      counter by name, plus ["name"] and ["class"]. *)

  method write_handler : string -> string -> (unit, string) result
  (** Click-style write handlers for run-time control (e.g. a Queue's
      ["capacity"], a source's ["active"]). Default: no handlers. *)

  (** {2 For subclasses} *)

  method output : int -> Oclick_packet.Packet.t -> unit
  (** Transfer a packet downstream (a push "virtual call"). Unconnected
      ports drop and report. *)

  method input_pull : int -> Oclick_packet.Packet.t option
  (** Request a packet from upstream (a pull "virtual call"). *)

  method output_batch : int -> Oclick_packet.Packet.t array -> unit
  (** Transfer a whole batch downstream: one quarantine check, one
      {!Hooks.t.on_transfer_batch} report, one [push_batch] dispatch.
      Per-packet mangle (fault injection) still applies. A batch of one
      falls back to the scalar {!output}. *)

  method input_pull_batch : int -> Oclick_packet.Packet.t array -> int
  (** Batched upstream request: fills the array from the front via the
      peer's [pull_batch], reports one batched transfer, returns the
      count. *)

  method private guard : (Oclick_packet.Packet.t -> unit) -> Oclick_packet.Packet.t -> unit
  (** [guard f p] runs [f p] under scalar-equivalent per-packet fault
      containment — the building block for [push_batch] overrides. *)

  method private sub_batch : Oclick_packet.Packet.t array -> int -> Oclick_packet.Packet.t array
  (** [sub_batch batch m] is the first [m] packets of [batch], reusing
      the array itself when [m = Array.length batch]. *)

  method private scratch : int -> Oclick_packet.Packet.t array
  (** A reusable per-element batch array of at least [n] slots, for task
      loops (contents are garbage; fill before use). *)

  method private alloc : ?headroom:int -> int -> Oclick_packet.Packet.t
  (** Pool-aware packet allocation for source elements. *)

  method private recycle : Oclick_packet.Packet.t -> unit
  (** Return a dead packet to the installed pool (no-op without one). *)

  method charge : Hooks.work -> unit

  method lean_work : bool
  (** Whether the installed work hook is the null one: per-packet charge
      sites test this first so the [Hooks.work] constructor isn't
      allocated just to feed a no-op hook. *)

  method drop : reason:string -> Oclick_packet.Packet.t -> unit

  method spawn : Oclick_packet.Packet.t -> unit
  (** Report a packet born inside this element (clone, ICMP error, IP
      fragment, ARP query) so conservation accounting can balance. *)

  (** {2 Degradation layer}

      Packet transfers through {!output}/{!input_pull} contain exceptions
      escaping the peer element: the fault is reported via
      {!Hooks.on_fault}, the packet becomes an accounted drop
      (["element fault"]), and an element failing
      {!set_quarantine_threshold} consecutive times is quarantined — the
      runtime mirror of [click-undead]: transfers into it become
      accounted drops (["quarantined element"]) and its task is no
      longer scheduled. [Out_of_memory], [Stack_overflow] and [Sys.Break]
      are never contained. *)

  method is_quarantined : bool
  method fault_count : int
  (** Exceptions contained so far on behalf of this element. *)

  method set_quarantine_threshold : int -> unit
  (** Consecutive faults before quarantine; [0] disables. Default 8. *)

  method set_mangle : (Oclick_packet.Packet.t -> unit) option -> unit
  (** Install an in-flight corruption function applied to every packet
      this element transfers downstream (fault injection). *)

  method set_clock : (unit -> int) -> unit
  (** Install the nanosecond time source stateful elements age by —
      the testbed's simulated clock, or the wall clock in live runs. *)

  method record_fault : string -> unit
  method note_ok : unit
end

(** Click's [simple_action] sugar: one agnostic input, one agnostic
    output, a per-packet transformation. Both [push] and [pull] are
    derived from {!action}, so the element genuinely works in either
    context. (The shared dispatch site this creates in real Click is what
    confuses the branch predictor — paper §3 footnote; the cycle model
    accounts for it per class.) *)
class virtual simple_action : string -> object
  inherit base

  method virtual private action :
    Oclick_packet.Packet.t -> Oclick_packet.Packet.t option
  (** Transform a packet; [None] means the element consumed (dropped) it. *)

  method private inplace : Oclick_packet.Packet.t -> verdict
  (** In-place fast path, checked before {!action} on every transfer
      path. The default answers {!V_defer} (route through [action]). An
      element whose action never substitutes a different packet should
      put its real body here — mutate the packet, answer {!V_keep} or
      {!V_drop} — and define [action] as {!action_of_inplace}: the
      batched and fused paths then move packets without boxing a
      [Packet.t option] per packet. *)

  method private action_of_inplace :
    Oclick_packet.Packet.t -> Oclick_packet.Packet.t option
  (** The delegation body for in-place elements' [action]: runs
      {!inplace} and boxes its verdict, for callers that need the option
      form. *)
end

val configure_error : string -> ('a, string) result
(** Shorthand for [Error msg] in configure methods. *)

val fatal : exn -> bool
(** Exceptions the degradation layer must never contain:
    [Out_of_memory], [Stack_overflow], [Sys.Break]. *)

val force_scratch_placeholder : unit -> unit
(** Force the lazy fill value shared by every element's scratch batch
    array. The multi-domain runner calls this before spawning domains:
    [Lazy.force] is not safe to race, and leaving the value lazy (rather
    than making it eager) keeps packet-id sequences — and the golden
    traces derived from them — unchanged for single-domain runs. *)
