bin/click_flatten.ml: Cmdliner Oclick_lang Term Tool_common
