lib/hw/cost_model.mli: Btb Oclick_runtime
