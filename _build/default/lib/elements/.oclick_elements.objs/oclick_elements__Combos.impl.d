lib/elements/combos.ml: Args E Fun Headers Hooks Ipaddr List Option Packet Prelude String
