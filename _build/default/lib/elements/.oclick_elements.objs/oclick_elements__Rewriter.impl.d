lib/elements/rewriter.ml: E Hashtbl Headers Hooks Ipaddr List Option Packet Prelude String
