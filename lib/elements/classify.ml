(* The generic classification elements. Each compiles its configuration
   into a decision tree at configure time and *interprets* that tree per
   packet (paper Fig. 3a) — the behaviour click-fastclassifier replaces
   with specialized code.

   [register_fast_classifier] installs a generated class whose instances
   run the closure-compiled tree instead: this is the runtime half of
   click-fastclassifier, standing in for Click's dynamic linking of
   generated C++. *)

open Prelude
module Tree = Oclick_classifier.Tree
module Optimize = Oclick_classifier.Optimize
module Compile = Oclick_classifier.Compile
module Codegen = Oclick_classifier.Codegen

(* The fused classifier body shared by the tree-interpreting and
   fast-classifier elements: the decision tree compiled to nested
   closures (Codegen.closures), each leaf charging the same work the
   scalar push charges — with the identical visited count, so cost
   ledgers match the interpreted run exactly — and continuing straight
   into the compiled connection for its output port. *)
let fuse_classifier ctx tree ~noutputs ~charge ~on_invalid =
  let lean = ctx.E.fc_lean_work in
  let leaf k =
    let finish =
      if k >= 0 && k < noutputs then ctx.E.fc_out k else on_invalid
    in
    if lean then fun p _visited -> finish p
    else
      fun p visited ->
        charge visited;
        finish p
  in
  Codegen.closures tree ~leaf

class virtual tree_classifier name =
  object (self)
    inherit E.base name
    val mutable tree = Tree.leaf_tree Tree.drop 1
    val mutable dropped = 0
    val mutable port_scratch : int array = [||]
    method virtual private build_tree : string -> (Tree.t, string) result
    method! port_count = "1/-"
    method! processing = "h/h"
    method tree = tree

    method! configure config =
      match self#build_tree config with
      | Error e -> Error e
      | Ok t ->
          tree <- Optimize.optimize t;
          Ok ()

    method! push _ p =
      let packed = Tree.classify_packed tree p in
      let out = Tree.packed_output packed in
      if not self#lean_work then
        self#charge (Hooks.W_classify_interp (Tree.packed_visited packed));
      if out >= 0 && out < self#noutputs then self#output out p
      else begin
        dropped <- dropped + 1;
        self#drop ~reason:"classified to no output" p
      end

    method! push_batch _ batch =
      (* Classify the whole batch first (one summed work charge — the
         cost model is linear in nodes visited), then emit contiguous
         same-output runs as single transfers. *)
      let n = Array.length batch in
      if Array.length port_scratch < n then port_scratch <- Array.make n 0;
      let ports = port_scratch in
      let visited_total = ref 0 in
      for i = 0 to n - 1 do
        if self#is_quarantined then begin
          self#drop ~reason:"quarantined element" batch.(i);
          ports.(i) <- consumed
        end
        else
          match Tree.classify_packed tree batch.(i) with
          | packed ->
              visited_total := !visited_total + Tree.packed_visited packed;
              self#note_ok;
              ports.(i) <- Tree.packed_output packed
          | exception e when not (E.fatal e) ->
              self#record_fault (Printexc.to_string e);
              self#drop ~reason:"element fault" batch.(i);
              ports.(i) <- consumed
      done;
      if !visited_total > 0 then
        self#charge (Hooks.W_classify_interp !visited_total);
      emit_runs self ports batch n ~on_invalid:(fun p ->
          dropped <- dropped + 1;
          self#drop ~reason:"classified to no output" p)

    method! fuse ctx =
      Some
        (fuse_classifier ctx tree ~noutputs:self#noutputs
           ~charge:(fun v -> self#charge (Hooks.W_classify_interp v))
           ~on_invalid:(fun p ->
             dropped <- dropped + 1;
             self#drop ~reason:"classified to no output" p))

    method! region_sem =
      Some
        (Region.Classify
           {
             cl_tree = tree;
             cl_charge = (fun v -> self#charge (Hooks.W_classify_interp v));
             cl_invalid =
               (fun p ->
                 dropped <- dropped + 1;
                 self#drop ~reason:"classified to no output" p);
           })

    method! stats =
      [
        ("nodes", Tree.node_count tree);
        ("depth", Tree.depth tree);
        ("dropped", dropped);
      ]
  end

class classifier name =
  object
    inherit tree_classifier name
    method class_name = "Classifier"
    method private build_tree config =
      Oclick_classifier.Pattern.tree_of_config config
  end

class ip_classifier name =
  object
    inherit tree_classifier name
    method class_name = "IPClassifier"
    method private build_tree config =
      Oclick_classifier.Filter.ipclassifier_tree config
  end

class ip_filter name =
  object
    inherit tree_classifier name
    method class_name = "IPFilter"
    method private build_tree config =
      Oclick_classifier.Filter.ipfilter_tree config
  end

(* A FastClassifier instance: the tree is already built and optimized by
   the tool; classification runs compiled closures. *)
class fast_classifier cls name (t : Tree.t) =
  object (self)
    inherit E.base name
    val compiled = Compile.compile_count t
    val mutable dropped = 0
    val mutable port_scratch : int array = [||]
    method class_name = cls
    method! port_count = "1/-"
    method! processing = "h/h"
    method! configure _ = Ok () (* the tree is baked in *)

    method! push _ p =
      let out, visited = compiled ~read:(Tree.packet_read p) in
      if not self#lean_work then
        self#charge (Hooks.W_classify_compiled visited);
      if out >= 0 && out < self#noutputs then self#output out p
      else begin
        dropped <- dropped + 1;
        self#drop ~reason:"classified to no output" p
      end

    method! push_batch _ batch =
      let n = Array.length batch in
      if Array.length port_scratch < n then port_scratch <- Array.make n 0;
      let ports = port_scratch in
      let visited_total = ref 0 in
      for i = 0 to n - 1 do
        if self#is_quarantined then begin
          self#drop ~reason:"quarantined element" batch.(i);
          ports.(i) <- consumed
        end
        else
          match compiled ~read:(Tree.packet_read batch.(i)) with
          | out, visited ->
              visited_total := !visited_total + visited;
              self#note_ok;
              ports.(i) <- out
          | exception e when not (E.fatal e) ->
              self#record_fault (Printexc.to_string e);
              self#drop ~reason:"element fault" batch.(i);
              ports.(i) <- consumed
      done;
      if !visited_total > 0 then
        self#charge (Hooks.W_classify_compiled !visited_total);
      emit_runs self ports batch n ~on_invalid:(fun p ->
          dropped <- dropped + 1;
          self#drop ~reason:"classified to no output" p)

    method! fuse ctx =
      Some
        (fuse_classifier ctx t ~noutputs:self#noutputs
           ~charge:(fun v -> self#charge (Hooks.W_classify_compiled v))
           ~on_invalid:(fun p ->
             dropped <- dropped + 1;
             self#drop ~reason:"classified to no output" p))

    method! region_sem =
      Some
        (Region.Classify
           {
             cl_tree = t;
             cl_charge = (fun v -> self#charge (Hooks.W_classify_compiled v));
             cl_invalid =
               (fun p ->
                 dropped <- dropped + 1;
                 self#drop ~reason:"classified to no output" p);
           })

    method! stats =
      [ ("nodes", Tree.node_count t); ("dropped", dropped) ]
  end

let register_fast_classifier ~class_name (t : Tree.t) =
  def ~replace:true ~ports:"1/-" ~processing:"h/h" class_name (fun n ->
      (new fast_classifier class_name n t :> E.t))

let register () =
  def "Classifier" ~ports:"1/-" ~processing:"h/h" (fun n ->
      (new classifier n :> E.t));
  def "IPClassifier" ~ports:"1/-" ~processing:"h/h" (fun n ->
      (new ip_classifier n :> E.t));
  def "IPFilter" ~ports:"1/-" ~processing:"h/h" (fun n ->
      (new ip_filter n :> E.t))
