module Optim = Oclick_optim

type t = Oclick_graph.Router.t

let fail_on_error what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "%s: %s" what e)

let fastclassify router =
  fst (fail_on_error "click-fastclassifier" (Optim.Fastclassifier.run router))

let devirtualize ?exclude router =
  fst
    (fail_on_error "click-devirtualize"
       (Optim.Devirtualize.run ?exclude router))

let transform router =
  fst
    (fail_on_error "click-xform"
       (Optim.Xform.run ~patterns:(Optim.Patterns.combos ()) router))

let undead router = fst (fail_on_error "click-undead" (Optim.Undead.run router))

let eliminate_arp ~router ~hosts ~links =
  let combined =
    fail_on_error "click-combine"
      (Optim.Combine.combine (("router", router) :: hosts) ~links)
  in
  let transformed, _count =
    fail_on_error "click-xform (ARP elimination)"
      (Optim.Xform.run ~patterns:(Optim.Patterns.arp_elimination ()) combined)
  in
  fail_on_error "click-uncombine"
    (Optim.Combine.uncombine transformed ~name:"router")

type variant = Base | Fc | Dv | Xf | All | Mr | Mr_all

let variant_name = function
  | Base -> "Base"
  | Fc -> "FC"
  | Dv -> "DV"
  | Xf -> "XF"
  | All -> "All"
  | Mr -> "MR"
  | Mr_all -> "MR+All"

let variants = [ Base; Fc; Dv; Xf; All; Mr; Mr_all ]

let need_mr_context = function
  | Some hosts, Some links -> (hosts, links)
  | _ -> failwith "optimize: MR variants need ~hosts and ~links"

let optimize ?hosts ?links variant router =
  match variant with
  | Base -> router
  | Fc -> fastclassify router
  | Dv -> devirtualize router
  | Xf -> transform router
  | All ->
      (* Devirtualize last: it cements the element graph (paper §6.1). *)
      devirtualize (fastclassify (transform router))
  | Mr ->
      let hosts, links = need_mr_context (hosts, links) in
      eliminate_arp ~router ~hosts ~links
  | Mr_all ->
      let hosts, links = need_mr_context (hosts, links) in
      let router = eliminate_arp ~router ~hosts ~links in
      devirtualize (fastclassify (transform router))
