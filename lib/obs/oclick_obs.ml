(* Per-element observability: counters, cost attribution, event trace.

   The paper explains every optimization win with per-element cycle
   tables (its per-element breakdowns of the IP router), so the
   evaluation layer must attribute cost element-by-element, not just in
   aggregate. This module holds the accumulators; the runtime reports
   into them through a wrapped {!Oclick_runtime.Hooks.t}, so the hot
   path pays nothing when observation is off (the driver keeps its plain
   hooks) and no per-packet allocation when it is on. *)

module Hooks = Oclick_runtime.Hooks
module Packet = Oclick_packet.Packet

(* ------------------------------------------------------------------ *)
(* Bounded event trace *)

module Trace = struct
  type kind = Push | Pull | Drop | Spawn

  type event = {
    ev_seq : int;  (* position in the run's full event stream *)
    ev_ns : int;
    ev_kind : kind;
    ev_src_idx : int;
    ev_src_port : int;
    ev_dst_idx : int;
    ev_dst_port : int;
    ev_packet : int;
    ev_reason : string;
  }

  (* A ring: the last [capacity] events, oldest overwritten first. *)
  type t = {
    cap : int;
    buf : event array;
    mutable next : int;  (* slot for the next event *)
    mutable seen : int;  (* events ever recorded *)
  }

  let none =
    {
      ev_seq = 0;
      ev_ns = 0;
      ev_kind = Push;
      ev_src_idx = -1;
      ev_src_port = -1;
      ev_dst_idx = -1;
      ev_dst_port = -1;
      ev_packet = -1;
      ev_reason = "";
    }

  let create cap =
    if cap <= 0 then invalid_arg "Obs.Trace.create";
    { cap; buf = Array.make cap none; next = 0; seen = 0 }

  let capacity t = t.cap
  let seen t = t.seen
  let length t = min t.seen t.cap

  let record t ~ns ~kind ~src_idx ~src_port ~dst_idx ~dst_port ~packet
      ~reason =
    t.buf.(t.next) <-
      {
        ev_seq = t.seen;
        ev_ns = ns;
        ev_kind = kind;
        ev_src_idx = src_idx;
        ev_src_port = src_port;
        ev_dst_idx = dst_idx;
        ev_dst_port = dst_port;
        ev_packet = packet;
        ev_reason = reason;
      };
    t.next <- (t.next + 1) mod t.cap;
    t.seen <- t.seen + 1

  let events t =
    let n = length t in
    let first = (t.next - n + t.cap) mod t.cap in
    List.init n (fun i -> t.buf.((first + i) mod t.cap))

  let reset t =
    t.next <- 0;
    t.seen <- 0

  let kind_name = function
    | Push -> "push"
    | Pull -> "pull"
    | Drop -> "drop"
    | Spawn -> "spawn"
end

(* ------------------------------------------------------------------ *)
(* Per-element accumulators *)

type elem = {
  mutable el_name : string;
  mutable el_class : string;
  mutable el_pushes : int;
  mutable el_pulls : int;
  mutable el_batches : int;
  mutable el_in : int;
  mutable el_out : int;
  mutable el_in_ports : int array;
  mutable el_out_ports : int array;
  el_drop_reasons : (string, int ref) Hashtbl.t;
  mutable el_drops : int;
  mutable el_spawns : int;
  mutable el_work : int;
  mutable el_recycles : int;
  mutable el_sim_ns : int;
  mutable el_wall_ns : int;
}

let fresh_elem () =
  {
    el_name = "";
    el_class = "";
    el_pushes = 0;
    el_pulls = 0;
    el_batches = 0;
    el_in = 0;
    el_out = 0;
    el_in_ports = [||];
    el_out_ports = [||];
    el_drop_reasons = Hashtbl.create 4;
    el_drops = 0;
    el_spawns = 0;
    el_work = 0;
    el_recycles = 0;
    el_sim_ns = 0;
    el_wall_ns = 0;
  }

type t = {
  mutable elems : elem array;  (* grow-on-demand, indexed by element idx *)
  trace : Trace.t option;
  count_recycles : bool;
  mutable w_cur : int;  (* element whose code is executing, for wall attribution *)
  mutable w_last : int;  (* timestamp of the last attribution boundary *)
}

let create ?trace ?(recycles = false) () =
  {
    elems = [||];
    trace = Option.map Trace.create trace;
    count_recycles = recycles;
    w_cur = -1;
    w_last = 0;
  }

let trace t = t.trace

let elem t idx =
  if idx < 0 then invalid_arg "Obs.elem";
  let n = Array.length t.elems in
  if idx >= n then
    t.elems <-
      Array.init
        (max (idx + 1) (max 8 (2 * n)))
        (fun i -> if i < n then t.elems.(i) else fresh_elem ());
  t.elems.(idx)

let set_meta t ~idx ~name ~cls =
  let e = elem t idx in
  e.el_name <- name;
  e.el_class <- cls

let reset t =
  Array.iter
    (fun e ->
      e.el_pushes <- 0;
      e.el_pulls <- 0;
      e.el_batches <- 0;
      e.el_in <- 0;
      e.el_out <- 0;
      Array.fill e.el_in_ports 0 (Array.length e.el_in_ports) 0;
      Array.fill e.el_out_ports 0 (Array.length e.el_out_ports) 0;
      Hashtbl.reset e.el_drop_reasons;
      e.el_drops <- 0;
      e.el_spawns <- 0;
      e.el_work <- 0;
      e.el_recycles <- 0;
      e.el_sim_ns <- 0;
      e.el_wall_ns <- 0)
    t.elems;
  Option.iter Trace.reset t.trace;
  t.w_cur <- -1;
  t.w_last <- 0

let clear t =
  t.elems <- [||];
  Option.iter Trace.reset t.trace;
  t.w_cur <- -1;
  t.w_last <- 0

let charge_sim_ns t ~idx ns =
  if idx >= 0 then (elem t idx).el_sim_ns <- (elem t idx).el_sim_ns + ns

let bump_port e out port n =
  let arr = if out then e.el_out_ports else e.el_in_ports in
  let arr =
    if port < Array.length arr then arr
    else begin
      let grown = Array.make (port + 1) 0 in
      Array.blit arr 0 grown 0 (Array.length arr);
      if out then e.el_out_ports <- grown else e.el_in_ports <- grown;
      grown
    end
  in
  if port >= 0 then arr.(port) <- arr.(port) + n

(* Fold one accumulator into another — the deterministic merge the
   multi-domain runner uses to combine per-domain ledgers into a single
   report. Counters add; metadata fills empty slots; trace events append
   in the source's order (call once per shard, in shard order, for a
   deterministic combined stream). The source is left untouched. *)
let merge_into ~src ~dst =
  Array.iteri
    (fun idx (se : elem) ->
      let touched =
        (not (String.equal se.el_name "")) || not (String.equal se.el_class "")
        || se.el_pushes <> 0 || se.el_pulls <> 0 || se.el_batches <> 0
        || se.el_in <> 0 || se.el_out <> 0 || se.el_drops <> 0
        || se.el_spawns <> 0 || se.el_work <> 0 || se.el_recycles <> 0
        || se.el_sim_ns <> 0 || se.el_wall_ns <> 0
      in
      if touched then begin
        let de = elem dst idx in
        if String.equal de.el_name "" then de.el_name <- se.el_name;
        if String.equal de.el_class "" then de.el_class <- se.el_class;
        de.el_pushes <- de.el_pushes + se.el_pushes;
        de.el_pulls <- de.el_pulls + se.el_pulls;
        de.el_batches <- de.el_batches + se.el_batches;
        de.el_in <- de.el_in + se.el_in;
        de.el_out <- de.el_out + se.el_out;
        Array.iteri (fun p n -> if n > 0 then bump_port de false p n)
          se.el_in_ports;
        Array.iteri (fun p n -> if n > 0 then bump_port de true p n)
          se.el_out_ports;
        Hashtbl.iter
          (fun reason r ->
            match Hashtbl.find_opt de.el_drop_reasons reason with
            | Some tot -> tot := !tot + !r
            | None -> Hashtbl.replace de.el_drop_reasons reason (ref !r))
          se.el_drop_reasons;
        de.el_drops <- de.el_drops + se.el_drops;
        de.el_spawns <- de.el_spawns + se.el_spawns;
        de.el_work <- de.el_work + se.el_work;
        de.el_recycles <- de.el_recycles + se.el_recycles;
        de.el_sim_ns <- de.el_sim_ns + se.el_sim_ns;
        de.el_wall_ns <- de.el_wall_ns + se.el_wall_ns
      end)
    src.elems;
  match (dst.trace, src.trace) with
  | Some dt, Some st ->
      List.iter
        (fun (ev : Trace.event) ->
          Trace.record dt ~ns:ev.Trace.ev_ns ~kind:ev.Trace.ev_kind
            ~src_idx:ev.Trace.ev_src_idx ~src_port:ev.Trace.ev_src_port
            ~dst_idx:ev.Trace.ev_dst_idx ~dst_port:ev.Trace.ev_dst_port
            ~packet:ev.Trace.ev_packet ~reason:ev.Trace.ev_reason)
        (Trace.events st)
  | _ -> ()

(* One transfer of [n] packets. For a push the packets flow
   [tr_src -> tr_dst]; for a pull the puller is [tr_src] and the packets
   flow out of the pulled element [tr_dst] into it. *)
let note_transfer t (tr : Hooks.transfer) n ~batched =
  let producer, pport, consumer, cport =
    if tr.Hooks.tr_pull then
      (tr.Hooks.tr_dst_idx, tr.Hooks.tr_dst_port, tr.Hooks.tr_src_idx,
       tr.Hooks.tr_src_port)
    else
      (tr.Hooks.tr_src_idx, tr.Hooks.tr_src_port, tr.Hooks.tr_dst_idx,
       tr.Hooks.tr_dst_port)
  in
  let pe = elem t producer and ce = elem t consumer in
  if String.equal pe.el_class "" then
    pe.el_class <-
      (if tr.Hooks.tr_pull then tr.Hooks.tr_dst_class
       else tr.Hooks.tr_src_class);
  if String.equal ce.el_class "" then
    ce.el_class <-
      (if tr.Hooks.tr_pull then tr.Hooks.tr_src_class
       else tr.Hooks.tr_dst_class);
  pe.el_out <- pe.el_out + n;
  ce.el_in <- ce.el_in + n;
  bump_port pe true pport n;
  bump_port ce false cport n;
  (* Invocation counters: a push invokes the consumer, a pull the
     producer; a batched transfer is one invocation standing for [n]. *)
  if batched then
    if tr.Hooks.tr_pull then pe.el_batches <- pe.el_batches + 1
    else ce.el_batches <- ce.el_batches + 1
  else if tr.Hooks.tr_pull then pe.el_pulls <- pe.el_pulls + 1
  else ce.el_pushes <- ce.el_pushes + 1

let note_drop t ~idx ~cls ~reason =
  let e = elem t idx in
  if String.equal e.el_class "" then e.el_class <- cls;
  e.el_drops <- e.el_drops + 1;
  if t.count_recycles then e.el_recycles <- e.el_recycles + 1;
  match Hashtbl.find_opt e.el_drop_reasons reason with
  | Some r -> incr r
  | None -> Hashtbl.replace e.el_drop_reasons reason (ref 1)

(* Wall-clock attribution is an event-delta scheme: the time elapsed
   between two consecutive hook events is charged to the element whose
   code was executing in between, and transfers move that attribution
   point through the graph. Pulled elements fold into their puller's
   interval (pulls are cheap: Queue dequeues). An approximation, but an
   allocation-free one that needs no per-element timers. *)
let wall_tick t now next =
  let nowv = now () in
  if t.w_cur >= 0 then begin
    let e = elem t t.w_cur in
    let d = nowv - t.w_last in
    if d > 0 then e.el_wall_ns <- e.el_wall_ns + d
  end;
  t.w_last <- nowv;
  t.w_cur <- next

let trace_transfer t now (tr : Hooks.transfer) p =
  match t.trace with
  | None -> ()
  | Some tr_buf ->
      Trace.record tr_buf ~ns:(now ())
        ~kind:(if tr.Hooks.tr_pull then Trace.Pull else Trace.Push)
        ~src_idx:tr.Hooks.tr_src_idx ~src_port:tr.Hooks.tr_src_port
        ~dst_idx:tr.Hooks.tr_dst_idx ~dst_port:tr.Hooks.tr_dst_port
        ~packet:(Packet.id p) ~reason:""

let hooks ?(now = fun () -> 0) ?(wall = false) t (base : Hooks.t) : Hooks.t =
  {
    Hooks.on_transfer =
      (fun tr p ->
        base.Hooks.on_transfer tr p;
        note_transfer t tr 1 ~batched:false;
        trace_transfer t now tr p;
        if wall then wall_tick t now tr.Hooks.tr_dst_idx);
    Hooks.on_transfer_batch =
      (fun tr batch n ->
        base.Hooks.on_transfer_batch tr batch n;
        note_transfer t tr n ~batched:true;
        (match t.trace with
        | None -> ()
        | Some _ ->
            for i = 0 to n - 1 do
              trace_transfer t now tr batch.(i)
            done);
        if wall then wall_tick t now tr.Hooks.tr_dst_idx);
    Hooks.on_work =
      (fun ~idx ~cls w ->
        base.Hooks.on_work ~idx ~cls w;
        if idx >= 0 then begin
          let e = elem t idx in
          if String.equal e.el_class "" then e.el_class <- cls;
          e.el_work <- e.el_work + 1
        end);
    Hooks.on_drop =
      (fun ~idx ~cls ~reason p ->
        base.Hooks.on_drop ~idx ~cls ~reason p;
        note_drop t ~idx ~cls ~reason;
        (match t.trace with
        | None -> ()
        | Some tr_buf ->
            Trace.record tr_buf ~ns:(now ()) ~kind:Trace.Drop ~src_idx:idx
              ~src_port:(-1) ~dst_idx:(-1) ~dst_port:(-1)
              ~packet:(Packet.id p) ~reason);
        if wall then wall_tick t now idx);
    Hooks.on_spawn =
      (fun ~idx ~cls p ->
        base.Hooks.on_spawn ~idx ~cls p;
        let e = elem t idx in
        if String.equal e.el_class "" then e.el_class <- cls;
        e.el_spawns <- e.el_spawns + 1;
        match t.trace with
        | None -> ()
        | Some tr_buf ->
            Trace.record tr_buf ~ns:(now ()) ~kind:Trace.Spawn ~src_idx:idx
              ~src_port:(-1) ~dst_idx:(-1) ~dst_port:(-1)
              ~packet:(Packet.id p) ~reason:"");
    Hooks.on_fault = base.Hooks.on_fault;
    Hooks.on_warn = base.Hooks.on_warn;
  }

(* ------------------------------------------------------------------ *)
(* Immutable snapshots (for tests and rendering) *)

type stats = {
  s_idx : int;
  s_name : string;
  s_class : string;
  s_pushes : int;
  s_pulls : int;
  s_batches : int;
  s_in : int;
  s_out : int;
  s_in_ports : (int * int) list;
  s_out_ports : (int * int) list;
  s_drop_reasons : (string * int) list;
  s_drops : int;
  s_spawns : int;
  s_work : int;
  s_recycles : int;
  s_sim_ns : int;
  s_wall_ns : int;
}

let ports_list arr =
  let acc = ref [] in
  Array.iteri (fun i n -> if n > 0 then acc := (i, n) :: !acc) arr;
  List.rev !acc

let active e =
  (not (String.equal e.el_name "")) || (not (String.equal e.el_class ""))
  || e.el_in > 0 || e.el_out > 0 || e.el_drops > 0 || e.el_spawns > 0
  || e.el_work > 0 || e.el_sim_ns > 0 || e.el_wall_ns > 0

let snapshot t =
  let acc = ref [] in
  Array.iteri
    (fun idx e ->
      if active e then
        acc :=
          {
            s_idx = idx;
            s_name = (if String.equal e.el_name "" then
                        Printf.sprintf "e%d" idx
                      else e.el_name);
            s_class = e.el_class;
            s_pushes = e.el_pushes;
            s_pulls = e.el_pulls;
            s_batches = e.el_batches;
            s_in = e.el_in;
            s_out = e.el_out;
            s_in_ports = ports_list e.el_in_ports;
            s_out_ports = ports_list e.el_out_ports;
            s_drop_reasons =
              Hashtbl.fold (fun k r l -> (k, !r) :: l) e.el_drop_reasons []
              |> List.sort compare;
            s_drops = e.el_drops;
            s_spawns = e.el_spawns;
            s_work = e.el_work;
            s_recycles = e.el_recycles;
            s_sim_ns = e.el_sim_ns;
            s_wall_ns = e.el_wall_ns;
          }
          :: !acc)
    t.elems;
  List.rev !acc

let total_sim_ns t =
  Array.fold_left (fun a e -> a + e.el_sim_ns) 0 t.elems

let total_wall_ns t =
  Array.fold_left (fun a e -> a + e.el_wall_ns) 0 t.elems

let total_drops t = Array.fold_left (fun a e -> a + e.el_drops) 0 t.elems

(* Measured per-element costs as LPT weights for Partition.compute:
   indexed by element index, floored at 1 so an element the profiling
   run never touched still counts as present. *)
let cost_weights ?(wall = false) t =
  let n = Array.length t.elems in
  let a = Array.make (max n 1) 1 in
  Array.iteri
    (fun idx e ->
      let c = if wall then e.el_wall_ns else e.el_sim_ns in
      a.(idx) <- max 1 c)
    t.elems;
  a

let drop_reasons t =
  let acc : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun e ->
      Hashtbl.iter
        (fun k r ->
          match Hashtbl.find_opt acc k with
          | Some tot -> tot := !tot + !r
          | None -> Hashtbl.replace acc k (ref !r))
        e.el_drop_reasons)
    t.elems;
  Hashtbl.fold (fun k r l -> (k, !r) :: l) acc [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* A small self-contained JSON layer (printer + parser), enough for the
   report renderer and for schema validation in tests. *)

module Json = struct
  type value =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of value list
    | Obj of (string * value) list

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let rec print b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string b (Printf.sprintf "%.1f" f)
        else begin
          (* shortest representation that parses back to the same
             float, so costs survive a print/parse round trip *)
          let s = Printf.sprintf "%.15g" f in
          if float_of_string s = f then Buffer.add_string b s
          else Buffer.add_string b (Printf.sprintf "%.17g" f)
        end
    | String s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List vs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_string b ", ";
            print b v)
          vs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ", ";
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\": ";
            print b v)
          kvs;
        Buffer.add_char b '}'

  let to_string v =
    let b = Buffer.create 256 in
    print b v;
    Buffer.contents b

  exception Parse of string

  let of_string s =
    let pos = ref 0 in
    let len = String.length s in
    let peek () = if !pos < len then Some s.[!pos] else None in
    let fail msg = raise (Parse (Printf.sprintf "%s at %d" msg !pos)) in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () = Some c then advance ()
      else fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      if !pos + String.length word <= len
         && String.equal (String.sub s !pos (String.length word)) word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= len then fail "unterminated string";
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= len then fail "bad escape";
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 'r' -> Buffer.add_char b '\r'
             | 't' -> Buffer.add_char b '\t'
             | 'b' -> Buffer.add_char b '\b'
             | 'f' -> Buffer.add_char b '\012'
             | 'u' ->
                 if !pos + 4 >= len then fail "bad \\u escape";
                 let hex = String.sub s (!pos + 1) 4 in
                 let code =
                   try int_of_string ("0x" ^ hex)
                   with _ -> fail "bad \\u escape"
                 in
                 (* ASCII-only escapes are all this layer emits *)
                 if code < 0x80 then Buffer.add_char b (Char.chr code)
                 else Buffer.add_string b (Printf.sprintf "\\u%s" hex);
                 pos := !pos + 4
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < len && is_num s.[!pos] do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some n -> Int n
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected , or }"
            in
            Obj (members [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected , or ]"
            in
            List (items [])
          end
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    match parse_value () with
    | v ->
        skip_ws ();
        if !pos <> len then Error (Printf.sprintf "trailing input at %d" !pos)
        else Ok v
    | exception Parse msg -> Error msg

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Rendering: the paper-style per-element breakdown *)

module Report = struct
  type mode =
    | Sim of float  (** CPU MHz — cost column is simulated cycles *)
    | Wall  (** cost column is wall-clock nanoseconds *)

  let cost_of mode s =
    match mode with
    | Sim mhz -> float_of_int s.s_sim_ns *. mhz /. 1000.0
    | Wall -> float_of_int s.s_wall_ns

  let sorted mode t =
    snapshot t
    |> List.sort (fun a b ->
           match compare (cost_of mode b) (cost_of mode a) with
           | 0 -> compare a.s_idx b.s_idx
           | c -> c)

  (* Truncation never drops cost: rows past the cutoff collapse into a
     synthetic "(other)" aggregate (index -1), so totals and validate's
     cost-sum invariant hold for any [top]. *)
  let truncate top rows =
    match top with
    | None -> rows
    | Some n when n <= 0 || List.length rows <= n -> rows
    | Some n ->
        let rec split i = function
          | r :: rest when i < n ->
              let keep, drop = split (i + 1) rest in
              (r :: keep, drop)
          | rest -> ([], rest)
        in
        let keep, rest = split 0 rows in
        let merge_reasons acc rs =
          List.fold_left
            (fun acc (k, v) ->
              match List.assoc_opt k acc with
              | Some v0 -> (k, v0 + v) :: List.remove_assoc k acc
              | None -> (k, v) :: acc)
            acc rs
        in
        let other =
          List.fold_left
            (fun a s ->
              {
                a with
                s_pushes = a.s_pushes + s.s_pushes;
                s_pulls = a.s_pulls + s.s_pulls;
                s_batches = a.s_batches + s.s_batches;
                s_in = a.s_in + s.s_in;
                s_out = a.s_out + s.s_out;
                s_drop_reasons =
                  merge_reasons a.s_drop_reasons s.s_drop_reasons;
                s_drops = a.s_drops + s.s_drops;
                s_spawns = a.s_spawns + s.s_spawns;
                s_work = a.s_work + s.s_work;
                s_recycles = a.s_recycles + s.s_recycles;
                s_sim_ns = a.s_sim_ns + s.s_sim_ns;
                s_wall_ns = a.s_wall_ns + s.s_wall_ns;
              })
            {
              s_idx = -1;
              s_name = Printf.sprintf "(other: %d)" (List.length rest);
              s_class = "-";
              s_pushes = 0;
              s_pulls = 0;
              s_batches = 0;
              s_in = 0;
              s_out = 0;
              s_in_ports = [];
              s_out_ports = [];
              s_drop_reasons = [];
              s_drops = 0;
              s_spawns = 0;
              s_work = 0;
              s_recycles = 0;
              s_sim_ns = 0;
              s_wall_ns = 0;
            }
            rest
        in
        keep
        @ [ { other with s_drop_reasons = List.sort compare other.s_drop_reasons } ]

  let table ?top mode t =
    let rows = truncate top (sorted mode t) in
    let total = List.fold_left (fun a s -> a +. cost_of mode s) 0.0 rows in
    let t_in = List.fold_left (fun a s -> a + s.s_in) 0 rows in
    let t_out = List.fold_left (fun a s -> a + s.s_out) 0 rows in
    let t_drops = List.fold_left (fun a s -> a + s.s_drops) 0 rows in
    let cost_hdr = match mode with Sim _ -> "cycles" | Wall -> "wall ns" in
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf "%-22s %-18s %10s %10s %8s %12s %10s %7s\n" "element"
         "class" "in" "out" "drops" cost_hdr "cost/pkt" "%");
    List.iter
      (fun s ->
        let c = cost_of mode s in
        let per =
          let n = max s.s_in s.s_out in
          if n = 0 then 0.0 else c /. float_of_int n
        in
        let pct = if total > 0.0 then 100.0 *. c /. total else 0.0 in
        Buffer.add_string b
          (Printf.sprintf "%-22s %-18s %10d %10d %8d %12.0f %10.1f %6.1f%%\n"
             s.s_name s.s_class s.s_in s.s_out s.s_drops c per pct))
      rows;
    Buffer.add_string b
      (Printf.sprintf "%-22s %-18s %10d %10d %8d %12.0f %10s %6.1f%%\n"
         "total" "" t_in t_out t_drops total "" 100.0);
    Buffer.contents b

  let json ?top mode t =
    let rows = truncate top (sorted mode t) in
    let total = List.fold_left (fun a s -> a +. cost_of mode s) 0.0 rows in
    let elements =
      List.map
        (fun s ->
          let c = cost_of mode s in
          let pct = if total > 0.0 then 100.0 *. c /. total else 0.0 in
          Json.Obj
            [
              ("index", Json.Int s.s_idx);
              ("name", Json.String s.s_name);
              ("class", Json.String s.s_class);
              ("in", Json.Int s.s_in);
              ("out", Json.Int s.s_out);
              ("pushes", Json.Int s.s_pushes);
              ("pulls", Json.Int s.s_pulls);
              ("batches", Json.Int s.s_batches);
              ("spawns", Json.Int s.s_spawns);
              ("work", Json.Int s.s_work);
              ("drops", Json.Int s.s_drops);
              ( "drop_reasons",
                Json.Obj
                  (List.map (fun (k, n) -> (k, Json.Int n)) s.s_drop_reasons)
              );
              ("ns", Json.Int (match mode with
                               | Sim _ -> s.s_sim_ns
                               | Wall -> s.s_wall_ns));
              ("cost", Json.Float c);
              ("percent", Json.Float pct);
            ])
        rows
    in
    Json.Obj
      [
        ( "cost_unit",
          Json.String (match mode with Sim _ -> "cycles" | Wall -> "ns") );
        ( "total_ns",
          Json.Int
            (match mode with
            | Sim _ -> total_sim_ns t
            | Wall -> total_wall_ns t) );
        ("total_cost", Json.Float total);
        ("elements", Json.List elements);
      ]

  (* Schema check for the JSON emitted above (and wrapped by
     oclick-report): presence and types of every required field, and
     per-element cost summing to the stated total. *)
  let validate (v : Json.value) : (unit, string) result =
    let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
    let int_field o k =
      match Json.member k o with
      | Some (Json.Int _) -> Ok ()
      | _ -> err "missing or non-int field %S" k
    in
    let num_field o k =
      match Json.member k o with
      | Some (Json.Int _ | Json.Float _) -> Ok ()
      | _ -> err "missing or non-number field %S" k
    in
    let str_field o k =
      match Json.member k o with
      | Some (Json.String _) -> Ok ()
      | _ -> err "missing or non-string field %S" k
    in
    let ( >>= ) r f = Result.bind r (fun () -> f ()) in
    let check_element e =
      str_field e "name" >>= fun () ->
      str_field e "class" >>= fun () ->
      int_field e "index" >>= fun () ->
      int_field e "in" >>= fun () ->
      int_field e "out" >>= fun () ->
      int_field e "drops" >>= fun () ->
      int_field e "ns" >>= fun () ->
      num_field e "cost" >>= fun () ->
      num_field e "percent" >>= fun () ->
      match Json.member "drop_reasons" e with
      | Some (Json.Obj _) -> Ok ()
      | _ -> err "missing drop_reasons object"
    in
    str_field v "cost_unit" >>= fun () ->
    int_field v "total_ns" >>= fun () ->
    num_field v "total_cost" >>= fun () ->
    match Json.member "elements" v with
    | Some (Json.List es) ->
        let rec all = function
          | [] -> Ok ()
          | e :: rest -> Result.bind (check_element e) (fun () -> all rest)
        in
        Result.bind (all es) (fun () ->
            let num = function
              | Some (Json.Float f) -> f
              | Some (Json.Int n) -> float_of_int n
              | _ -> nan
            in
            let total = num (Json.member "total_cost" v) in
            let sum =
              List.fold_left
                (fun a e -> a +. num (Json.member "cost" e))
                0.0 es
            in
            if Float.abs (sum -. total) > 0.5 +. (1e-9 *. Float.abs total)
            then
              err "element costs sum to %.1f but total_cost is %.1f" sum
                total
            else Ok ())
    | _ -> err "missing elements array"
end
