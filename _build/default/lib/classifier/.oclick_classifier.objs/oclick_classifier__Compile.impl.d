lib/classifier/compile.ml: Array Tree
