test/test_runtime.ml: Alcotest Array List Oclick Oclick_elements Oclick_graph Oclick_packet Oclick_runtime Option Printf Result String
