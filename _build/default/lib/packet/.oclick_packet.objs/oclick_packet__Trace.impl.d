lib/packet/trace.ml: Buffer Bytes Char List Packet Printf String
