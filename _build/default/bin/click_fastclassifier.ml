(* click-fastclassifier: compile classifiers into specialized element
   classes; the generated source rides in the output archive. *)

open Cmdliner

let run input =
  let source = Tool_common.read_input input in
  let router = Tool_common.parse_router source in
  match Oclick_optim.Fastclassifier.run ~install:false router with
  | Error e -> Tool_common.die "%s" e
  | Ok (router, generated) ->
      Printf.eprintf "click-fastclassifier: %d classes generated\n"
        (List.length generated);
      Tool_common.output_router router

let () =
  Tool_common.run_tool "click-fastclassifier"
    "Compile classifier elements into specialized code."
    Term.(const run $ Tool_common.input_arg)
