lib/packet/packet.mli: Ipaddr
