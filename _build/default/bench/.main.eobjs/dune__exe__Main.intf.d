bench/main.mli:
