(* click-align (paper §7.1): a configuration whose element needs aligned
   packet data gets an Align inserted; a redundant hand-written Align is
   removed.

   Run with:  dune exec examples/align_demo.exe *)

module Router = Oclick_graph.Router
module Align = Oclick_optim.Align

let needs_align =
  {|
// CheckIPHeader reads 32-bit words and requires word alignment, but this
// configuration never strips the 14-byte Ethernet header, so IP data
// arrives at offset 2 (mod 4).
pd :: PollDevice(net0);
ck :: CheckIPHeader();
pd -> ck -> Queue(16) -> ToDevice(net1);
|}

let redundant_align =
  {|
// Strip(14) already leaves the data word-aligned, so this Align copies
// every packet for nothing.
pd :: PollDevice(net0);
pd -> Strip(14) -> Align(4, 0) -> CheckIPHeader() -> Queue(16) -> ToDevice(net1);
|}

let show title source =
  Oclick_elements.register_all ();
  let router =
    match Router.parse_string source with Ok r -> r | Error e -> failwith e
  in
  print_endline ("--- " ^ title ^ " ---");
  match Align.run router with
  | Error e -> failwith e
  | Ok (fixed, inserted, removed) ->
      Printf.printf "click-align: %d inserted, %d removed\n" inserted removed;
      print_string (Oclick_lang.Printer.to_string (Router.to_ast fixed));
      (inserted, removed)

let () =
  let inserted, removed = show "missing alignment" needs_align in
  assert (inserted = 1 && removed = 0);
  let inserted, removed = show "redundant Align" redundant_align in
  assert (inserted = 0 && removed = 1);
  (* The analysis itself is available programmatically. *)
  let router =
    match Router.parse_string needs_align with
    | Ok r -> r
    | Error e -> failwith e
  in
  List.iter
    (fun (i, (a : Align.alignment)) ->
      Printf.printf "%-12s sees alignment (%d, %d)\n" (Router.name router i)
        a.modulus a.offset)
    (Align.analyze router);
  print_endline "align_demo OK"
