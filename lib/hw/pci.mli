(** A shared PCI bus with round-robin arbitration.

    Transactions (descriptor fetches, packet DMA) serialize through the
    bus; each costs a fixed arbitration/address overhead plus data time at
    the bus's bandwidth. The arbiter grants requesters in round-robin
    order, so a device gets at most its fair share of a saturated bus —
    the mechanism that starves receiving NICs into FIFO overflows while
    transmitting NICs still make progress (paper §8.4). Failed descriptor
    checks consume bus time other devices could have used. *)

type t

val create :
  Engine.t ->
  bytes_per_sec:int ->
  ?overhead_ns:int ->
  ?stall_windows:(int * int) list ->
  unit ->
  t
(** [overhead_ns] defaults to 120. [stall_windows] are injected
    arbitration stalls, [(start_ns, len_ns)]: while inside a window the
    arbiter grants nothing, and pending transactions wait — fault
    injection for the evaluation testbed. *)

val request : t -> requester:int -> bytes:int -> (unit -> unit) -> unit
(** Enqueue a transaction for a device; the callback fires when it
    completes. Each requester's transactions stay in order; distinct
    requesters are served round-robin. *)

val busy_ns : t -> int
(** Total bus-occupied time, ns. *)

val stall_ns : t -> int
(** Total injected-stall time, ns. *)

val bytes_moved : t -> int
val transactions : t -> int
val reset_counters : t -> unit
