lib/lang/archive.ml: Buffer List Printf Scanf String
