(* Trace I/O elements: replay a recorded trace into a configuration, or
   record what flows past into a trace file. *)

open Prelude
module Trace = Oclick_packet.Trace

(* FromTrace(FILE [, LOOP]): a task source replaying a trace file in
   timestamp order, one packet per scheduler quantum. *)
class from_trace name =
  object (self)
    inherit E.base name
    val mutable path = ""
    val mutable looping = false
    val mutable pending : (int * Packet.t) list = []
    val mutable original : (int * Packet.t) list = []
    val mutable replayed = 0
    method class_name = "FromTrace"
    method! port_count = "0/1"
    method! processing = "h/h"

    method! configure config =
      match Args.split config with
      | [ f ] ->
          path <- f;
          Ok ()
      | [ f; l ] -> (
          match Args.parse_bool l with
          | Some b ->
              path <- f;
              looping <- b;
              Ok ()
          | None -> Error "FromTrace: bad LOOP flag")
      | _ -> Error "FromTrace expects FILE [, LOOP]"

    method! initialize _ctx =
      match
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        Trace.of_string s
      with
      | Ok packets ->
          original <- packets;
          pending <- packets;
          Ok ()
      | Error e -> Error e
      | exception Sys_error e -> Error e

    method! wants_task = true

    method! run_task =
      match pending with
      | (_, p) :: rest ->
          pending <- rest;
          if looping && rest = [] then
            pending <- List.map (fun (t, p) -> (t, Packet.clone p)) original;
          replayed <- replayed + 1;
          self#output 0 p;
          true
      | [] -> false

    method! stats = [ ("replayed", replayed) ]
  end

(* ToTrace(FILE): record passing packets (with their arrival order as
   timestamps) and pass them through. The file is opened once and each
   line is appended and flushed, so the trace on disk is always complete
   without rewriting the whole file per packet (the old behaviour, which
   also kept the entire trace buffered in memory for the router's
   lifetime). *)
class to_trace name =
  object (self)
    inherit E.simple_action name
    val mutable path = ""
    val mutable chan : out_channel option = None
    val line = Buffer.create 256
    val mutable recorded = 0
    method class_name = "ToTrace"

    method! configure config =
      match Args.split config with
      | [ f ] ->
          (match chan with
          | Some oc ->
              close_out oc;
              chan <- None
          | None -> ());
          path <- f;
          Ok ()
      | _ -> Error "ToTrace expects FILE"

    method private channel =
      match chan with
      | Some oc -> oc
      | None ->
          let oc = open_out_bin path in
          output_string oc Trace.header;
          output_char oc '\n';
          flush oc;
          chan <- Some oc;
          oc

    method private action p =
      let ts = (Packet.anno p).Packet.timestamp_ns in
      let ts = if ts > 0 then ts else recorded in
      Buffer.clear line;
      Trace.append_packet line ts p;
      recorded <- recorded + 1;
      let oc = self#channel in
      Buffer.output_buffer oc line;
      flush oc;
      Some p

    method! stats = [ ("recorded", recorded) ]
  end

let register () =
  def "FromTrace" ~ports:"0/1" ~processing:"h/h" (fun n ->
      (new from_trace n :> E.t));
  def "ToTrace" (fun n -> (new to_trace n :> E.t))
