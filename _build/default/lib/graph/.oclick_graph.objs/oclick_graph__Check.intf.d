lib/graph/check.mli: Router Spec
