(* Shared abbreviations and the registration helper used by every element
   module in this library. Not part of the public API. *)

module E = Oclick_runtime.Element
module Region = Oclick_runtime.Region
module Hooks = Oclick_runtime.Hooks
module Registry = Oclick_runtime.Registry
module Netdevice = Oclick_runtime.Netdevice
module Spsc = Oclick_runtime.Spsc
module Fifo = Oclick_runtime.Fifo
module Aged_table = Oclick_runtime.Aged_table
module Spec = Oclick_graph.Spec
module Packet = Oclick_packet.Packet
module Headers = Oclick_packet.Headers
module Ipaddr = Oclick_packet.Ipaddr
module Ethaddr = Oclick_packet.Ethaddr
module Args = Oclick_lang.Args

let def ?ports ?processing ?flow ?(replace = false) cls ctor =
  Registry.register ~replace
    ~spec:(Spec.make ?ports ?processing ?flow cls)
    cls ctor

(* Deterministic per-element pseudo-random stream (for RED). *)
let lcg_seed_of_name name = Hashtbl.hash name land 0x3fffffff

let lcg_next state =
  let s = ((!state * 1103515245) + 12345) land 0x3fffffff in
  state := s;
  s

(* A uniform float in [0,1). *)
let lcg_float state = float_of_int (lcg_next state) /. 1073741824.0

(* --- batched multi-output emission ---------------------------------------

   Shared by the classifier and routing elements: after computing an
   output port per packet, contiguous runs bound for the same port are
   forwarded as single batched transfers. *)

(* Sentinel port meaning "already consumed during classification"
   (dropped or faulted); run emission skips it. *)
let consumed = min_int

let emit_runs
    (self :
      < output : int -> Packet.t -> unit
      ; output_batch : int -> Packet.t array -> unit
      ; noutputs : int
      ; .. >) (ports : int array) (batch : Packet.t array) n ~on_invalid =
  let i = ref 0 in
  while !i < n do
    let port = ports.(!i) in
    let j = ref (!i + 1) in
    while !j < n && ports.(!j) = port do
      incr j
    done;
    let len = !j - !i in
    if port = consumed then ()
    else if port >= 0 && port < self#noutputs then begin
      if len = 1 then self#output port batch.(!i)
      else if !i = 0 && len = Array.length batch then
        self#output_batch port batch
      else self#output_batch port (Array.sub batch !i len)
    end
    else
      for k = !i to !j - 1 do
        on_invalid batch.(k)
      done;
    i := !j
  done

let parse_positional_and_keywords config =
  let args = Args.split config in
  List.partition_map
    (fun a ->
      match Args.keyword a with
      | Some (k, v) -> Right (k, v)
      | None -> Left a)
    args
