(* Classic bounded SPSC ring over a power-of-two slot array.

   The producer owns [tail] (writes a slot, then publishes by bumping
   tail); the consumer owns [head] (reads a slot, clears it so the ring
   never retains a reference to a consumed element, then bumps head).
   OCaml's [Atomic.get]/[Atomic.set] are sequentially consistent, which
   gives the publish/consume ordering directly. Each index is read-mostly
   for one side and write-mostly for the other, so the two atomics are
   kept in separately allocated cells with a spacer array between the
   record fields to keep them off one cache line. *)

type 'a t = {
  slots : 'a option array;
  mask : int;
  cap : int;  (* enforced capacity, <= Array.length slots *)
  head : int Atomic.t;  (* next slot to pop (consumer-owned) *)
  _pad : int array;  (* spacer: keeps head and tail allocations apart *)
  tail : int Atomic.t;  (* next slot to fill (producer-owned) *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create capacity =
  if capacity <= 0 then invalid_arg "Spsc.create";
  let n = pow2 capacity 1 in
  {
    slots = Array.make n None;
    mask = n - 1;
    cap = capacity;
    head = Atomic.make 0;
    _pad = Array.make 15 0;
    tail = Atomic.make 0;
  }

let capacity t = t.cap

let push t x =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head >= t.cap then false
  else begin
    t.slots.(tail land t.mask) <- Some x;
    Atomic.set t.tail (tail + 1);
    true
  end

let pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail - head <= 0 then None
  else begin
    let i = head land t.mask in
    let x = t.slots.(i) in
    t.slots.(i) <- None;
    Atomic.set t.head (head + 1);
    x
  end

let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)
let is_empty t = length t = 0
