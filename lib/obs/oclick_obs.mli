(** Per-element observability: counters, cost attribution, event trace.

    The paper's evaluation explains every optimization by breaking
    forwarding cost down element-by-element; this module is that layer
    for oclick. An {!t} accumulates, per instantiated element:

    - packet counters — packets in/out (total and per port), push/pull
      invocations, batched transfers, drops by reason, spawns, work
      units, pool recycles;
    - two cost columns — simulated nanoseconds charged by the testbed's
      cost model ({!charge_sim_ns}), and wall-clock nanoseconds
      attributed between hook events when running under the plain
      driver ({!hooks} with [~wall:true]).

    Observation is threaded through {!Oclick_runtime.Hooks}: wrap any
    base hooks with {!hooks} and install the result. When observation
    is off nothing is wrapped, so the hot path pays nothing; when on,
    the accumulators are preallocated and updated in place, with no
    per-packet allocation. *)

module Hooks = Oclick_runtime.Hooks

(** Bounded ring-buffer event trace: the last [capacity] packet events
    (transfer, drop, spawn), oldest overwritten first. *)
module Trace : sig
  type kind = Push | Pull | Drop | Spawn

  type event = {
    ev_seq : int;  (** position in the run's full event stream *)
    ev_ns : int;  (** timestamp from the clock given to {!hooks} *)
    ev_kind : kind;
    ev_src_idx : int;
    ev_src_port : int;
    ev_dst_idx : int;  (** [-1] for drop/spawn events *)
    ev_dst_port : int;
    ev_packet : int;  (** {!Oclick_packet.Packet.id} *)
    ev_reason : string;  (** drop reason; [""] otherwise *)
  }

  type t

  val create : int -> t
  (** [create cap] — ring of capacity [cap]; raises [Invalid_argument]
      if [cap <= 0]. *)

  val capacity : t -> int
  val seen : t -> int
  (** Events ever recorded (including overwritten ones). *)

  val length : t -> int
  (** Events currently held: [min seen capacity]. *)

  val events : t -> event list
  (** Retained events, oldest first. *)

  val reset : t -> unit
  val kind_name : kind -> string
end

type t

val create : ?trace:int -> ?recycles:bool -> unit -> t
(** [create ()] — an empty accumulator. [?trace] enables the event ring
    with the given capacity. [~recycles:true] counts each drop as a pool
    recycle too (install it when the driver runs with a packet pool,
    whose recycle-on-drop path reclaims every dropped packet). *)

val reset : t -> unit
(** Zero every counter, cost column and the trace, keeping element
    metadata. The testbed calls this at the warmup boundary, so the
    columns cover exactly the measurement window onward. *)

val clear : t -> unit
(** Like {!reset}, but also forget every element and its metadata. The
    testbed calls this at the start of each run, so an accumulator
    reused across runs of different graphs carries nothing over. *)

val set_meta : t -> idx:int -> name:string -> cls:string -> unit
(** Record an element's name and class for rendering. *)

val charge_sim_ns : t -> idx:int -> int -> unit
(** Attribute simulated nanoseconds to element [idx] (no-op for a
    negative index). The testbed mirrors every aggregate charge through
    this, so per-element totals equal the aggregate exactly. *)

val merge_into : src:t -> dst:t -> unit
(** Fold [src] into [dst]: counters and cost columns add per element
    index, drop-reason tables merge, metadata fills empty slots, and
    [src]'s trace events (if both sides trace) append to [dst]'s ring in
    [src] order. [src] is left untouched. The multi-domain runner keeps
    one accumulator per domain — each written only by its owner — and
    merges them in shard order after the run, so the combined ledger is
    deterministic and its totals satisfy the same exact-sum invariants
    as a single-domain ledger. *)

val hooks : ?now:(unit -> int) -> ?wall:bool -> t -> Hooks.t -> Hooks.t
(** [hooks t base] — hooks that update [t] and then forward every event
    to [base]. [?now] supplies trace timestamps (nanoseconds; defaults
    to a constant 0). [~wall:true] additionally attributes the
    wall-clock time between consecutive hook events to the element
    executing in between — the cost column for running under the plain
    driver, where no cost model charges cycles. *)

val trace : t -> Trace.t option

(** {2 Snapshots} *)

type stats = {
  s_idx : int;
  s_name : string;
  s_class : string;
  s_pushes : int;  (** scalar push invocations received *)
  s_pulls : int;  (** scalar pulls serviced (that moved a packet) *)
  s_batches : int;  (** batched transfers serviced *)
  s_in : int;
  s_out : int;
  s_in_ports : (int * int) list;  (** (port, packets), active ports only *)
  s_out_ports : (int * int) list;
  s_drop_reasons : (string * int) list;
  s_drops : int;
  s_spawns : int;
  s_work : int;
  s_recycles : int;
  s_sim_ns : int;
  s_wall_ns : int;
}

val snapshot : t -> stats list
(** Every element with recorded activity or metadata, by index. *)

val total_sim_ns : t -> int
val total_wall_ns : t -> int
val total_drops : t -> int

val cost_weights : ?wall:bool -> t -> int array
(** The measured cost columns as partition weights: entry [i] is element
    [i]'s simulated nanoseconds ([~wall:true]: wall-clock nanoseconds),
    floored at 1 so untouched elements still count as present. Indexed
    by the same dense element indices the driver reports to hooks, which
    is exactly the convention {!Oclick_parallel.Partition.compute}
    expects for its [?weights] — feed a single-domain profiling run's
    ledger straight in to balance shards by observed cost. *)

val drop_reasons : t -> (string * int) list
(** Drop totals per reason across all elements, sorted — directly
    comparable with the testbed ledger's drop table. *)

(** Minimal JSON layer (printer and parser) used by the report renderer
    and by schema validation in tests/CI. *)
module Json : sig
  type value =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of value list
    | Obj of (string * value) list

  val to_string : value -> string
  val of_string : string -> (value, string) result
  val member : string -> value -> value option
end

(** The paper-style per-element breakdown table. *)
module Report : sig
  type mode =
    | Sim of float  (** CPU MHz — cost column is simulated cycles *)
    | Wall  (** cost column is wall-clock nanoseconds *)

  val table : ?top:int -> mode -> t -> string
  (** Text table: one row per element, sorted by cost descending, with
      a cost-per-packet column and percent of total. [?top] keeps only
      the [top] most expensive rows and collapses the rest into a
      single ["(other: n)"] aggregate row (index -1), so the table
      still sums to the same totals. [top <= 0] means no truncation. *)

  val json : ?top:int -> mode -> t -> Json.value
  (** The same data as {!table}, including its [?top] truncation: an
      object with [cost_unit], [total_ns], [total_cost] and an
      [elements] array. Truncated output still passes {!validate} —
      the aggregate row carries the tail's cost. *)

  val validate : Json.value -> (unit, string) result
  (** Schema check for {!json} output (shape, field types, and that
      per-element costs sum to the stated total). *)
end
