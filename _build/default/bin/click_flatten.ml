(* click-flatten: compile away compound element abstractions. *)

open Cmdliner

let run input =
  let source = Tool_common.read_input input in
  (* Validate against the registry first: garbage, empty input, and
     out-of-range ports all die with a one-line diagnostic. *)
  let (_ : Oclick_graph.Router.t) = Tool_common.parse_router source in
  match Oclick_lang.Parser.parse source with
  | Error e ->
      prerr_endline e;
      exit 1
  | Ok ast -> (
      match Oclick_lang.Flatten.flatten ast with
      | Error e ->
          prerr_endline e;
          exit 1
      | Ok flat -> print_string (Oclick_lang.Printer.to_string flat))

let () =
  Tool_common.run_tool "click-flatten"
    "Expand compound elements in a Click configuration."
    Term.(const run $ Tool_common.input_arg)
