(** 48-bit Ethernet (MAC) addresses. *)

type t
(** An Ethernet address. Values are immutable. *)

val of_string : string -> t option
(** Parses colon-separated hex, e.g. ["00:e0:98:09:ab:af"]. *)

val of_string_exn : string -> t
(** Like {!of_string} but raises [Invalid_argument]. *)

val to_string : t -> string
(** Colon-separated lower-case hex rendering. *)

val of_bytes : string -> t
(** [of_bytes s] interprets a 6-byte raw string. *)

val to_bytes : t -> string
(** 6-byte raw representation. *)

val broadcast : t
(** ff:ff:ff:ff:ff:ff. *)

val zero : t
(** 00:00:00:00:00:00. *)

val is_broadcast : t -> bool
val is_group : t -> bool
(** True if the group (multicast) bit is set. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
