(* A NAT gateway built from the extended element library: private hosts
   behind an IPRewriter, a radix routing table, and a priority scheduler
   that lets ICMP jump the queue.

   Run with:  dune exec examples/nat_gateway.exe *)

module Packet = Oclick_packet.Packet
module Headers = Oclick_packet.Headers
module Ipaddr = Oclick_packet.Ipaddr
module Driver = Oclick_runtime.Driver
module Netdevice = Oclick_runtime.Netdevice

let config =
  {|
// lan0: the private side; wan0: the public side (18.26.4.24).
lan :: PollDevice(lan0);
wan :: PollDevice(wan0);
rw :: IPRewriter(18.26.4.24 4000-4999 - -);
rt :: RadixIPLookup(18.26.4.24/32 0, 0.0.0.0/0 1);
rt [0] -> Discard;                    // for the gateway itself
cl :: IPClassifier(icmp, -);

// outbound: private -> rewrite -> route -> priority queues -> wan
lan -> Strip(14) -> CheckIPHeader() -> rw;
rw [0] -> GetIPAddress(16) -> rt;
rt [1] -> cl;
cl [0] -> hi :: Queue(32);            // ICMP is latency-sensitive
cl [1] -> lo :: Queue(256);
hi -> ps :: PrioSched;
lo -> [1] ps;
// ToDevice pulls through the encapsulator and counter from the
// scheduler — simple_action elements work in pull context too.
ps -> EtherEncap(0800, 00:00:c0:01:00:01, 00:00:c0:02:00:02)
   -> wan_out :: Counter -> ToDevice(wan0);

// inbound: public replies -> reverse mapping -> private side
wan -> Strip(14) -> CheckIPHeader() -> [1] rw;
rw [1] -> lan_in :: Counter
       -> EtherEncap(0800, 00:00:c0:01:00:02, 00:00:c0:03:00:03)
       -> lq :: Queue(32) -> ToDevice(lan0);
|}

let () =
  Oclick_elements.register_all ();
  let lan0 = new Netdevice.queue_device "lan0" () in
  let wan0 = new Netdevice.queue_device "wan0" () in
  let driver =
    match
      Driver.of_string
        ~devices:[ (lan0 :> Netdevice.t); (wan0 :> Netdevice.t) ]
        config
    with
    | Ok d -> d
    | Error e -> failwith e
  in
  (* Two private hosts talk to the same public server. *)
  let send ~host ~sport =
    let p =
      Headers.Build.udp
        ~src_ip:(Ipaddr.of_string_exn host)
        ~dst_ip:(Ipaddr.of_string_exn "8.8.8.8")
        ~src_port:sport ~dst_port:53 ()
    in
    lan0#inject p
  in
  send ~host:"192.168.0.5" ~sport:1111;
  send ~host:"192.168.0.6" ~sport:1111 (* same source port! *);
  let (_ : bool) = Driver.run_until_idle driver in
  let public = ref [] in
  let rec drain () =
    match wan0#collect with
    | Some f ->
        let src = Headers.Ip.src ~off:14 f
        and sport = Headers.Udp.src_port ~off:34 f in
        Printf.printf "outbound on wan0: %s:%d -> %s (was a private host)\n"
          (Ipaddr.to_string src) sport
          (Ipaddr.to_string (Headers.Ip.dst ~off:14 f));
        public := sport :: !public;
        drain ()
    | None -> ()
  in
  drain ();
  assert (List.length !public = 2);
  assert (List.sort_uniq compare !public = List.sort compare !public);
  (* The server replies to the second mapping; the gateway translates it
     back to the right private host. *)
  let reply_port = List.hd !public in
  lan0#collect |> ignore;
  let reply =
    Headers.Build.udp
      ~src_ip:(Ipaddr.of_string_exn "8.8.8.8")
      ~dst_ip:(Ipaddr.of_string_exn "18.26.4.24")
      ~src_port:53 ~dst_port:reply_port ()
  in
  wan0#inject reply;
  let (_ : bool) = Driver.run_until_idle driver in
  (match lan0#collect with
  | Some f ->
      Printf.printf "reply delivered to %s:%d\n"
        (Ipaddr.to_string (Headers.Ip.dst ~off:14 f))
        (Headers.Udp.dst_port ~off:34 f);
      assert (Headers.Ip.dst ~off:14 f = Ipaddr.of_string_exn "192.168.0.6");
      assert (Headers.Udp.dst_port ~off:34 f = 1111)
  | None -> failwith "reply lost");
  print_endline "nat_gateway OK"
