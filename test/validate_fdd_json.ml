(* Schema validation for the FDD benchmark's JSON, used by the
   @fdd-smoke alias: reads BENCH_fdd.json (path argument, or stdin) and
   checks the shape the plotting/CI side depends on — both cascade
   variants present with positive wall-clock rates, the cascade actually
   fused (one region absorbing every downstream stage, pruned to far
   fewer nodes than the stage count implies), and the fused-over-compiled
   speedup bar cleared. Wall-clock ratios on a smoke budget are one
   unwarmed repetition, so the bar is 1x there (no regression); full
   runs must clear the 2x acceptance bar. Exits 1 with a one-line
   diagnostic on the first violation. *)

module Json = Oclick_obs.Json

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline msg;
      exit 1)
    fmt

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  Buffer.contents buf

let number label = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> die "%s: not a number" label

let get label obj field =
  match Json.member field obj with
  | Some v -> v
  | None -> die "%s: missing %S" label field

let check_variant ~label v =
  let name =
    match get label v "name" with
    | Json.String s -> s
    | _ -> die "%s: variant name is not a string" label
  in
  let label = Printf.sprintf "%s/%s" label name in
  if number label (get label v "forwarded") < 1.0 then
    die "%s: nothing forwarded" label;
  if number label (get label v "pps") <= 0.0 then
    die "%s: non-positive packet rate" label;
  (match get label v "compiled" with
  | Json.Bool true -> ()
  | _ -> die "%s: variant not compiled" label);
  (match get label v "fused" with
  | Json.Bool _ -> ()
  | _ -> die "%s: \"fused\" is not a bool" label);
  name

let check_regions ~stages doc =
  match get "doc" doc "cascade_regions" with
  | Json.List [] -> die "cascade_regions: no region fused on the cascade"
  | Json.List rs ->
      let deepest = ref 0 in
      List.iter
        (fun r ->
          let label =
            match get "region" r "entry" with
            | Json.String s -> s
            | _ -> die "region: entry is not a string"
          in
          let members =
            match get label r "members" with
            | Json.List (_ :: _ as ms) -> List.length ms
            | _ -> die "%s: fused region absorbed no member" label
          in
          deepest := max !deepest members;
          let nodes = int_of_float (number label (get label r "nodes")) in
          let actions = int_of_float (number label (get label r "actions")) in
          if actions < 1 then die "%s: no actions" label;
          (* Redundancy elimination is the point: a cascade of identical
             stages must prune to (roughly) one stage's tests, not
             concatenate. Allow 2x one stage's nodes as slack. *)
          if members >= 2 && nodes > 16 then
            die "%s: %d nodes for %d members — cascade tests not pruned"
              label nodes members)
        rs;
      if !deepest < stages - 1 then
        die "cascade_regions: deepest region absorbed %d members, want %d"
          !deepest (stages - 1)
  | _ -> die "cascade_regions is not a list"

let () =
  let input =
    if Array.length Sys.argv > 1 then (
      let ic = open_in Sys.argv.(1) in
      let s = read_all ic in
      close_in ic;
      s)
    else read_all stdin
  in
  let doc =
    match Json.of_string input with
    | Ok v -> v
    | Error e -> die "not valid JSON: %s" e
  in
  (match Json.member "section" doc with
  | Some (Json.String "fdd") -> ()
  | _ -> die "missing section=\"fdd\"");
  let smoke =
    match get "doc" doc "smoke" with
    | Json.Bool b -> b
    | _ -> die "smoke is not a bool"
  in
  let stages =
    match get "doc" doc "stages" with
    | Json.Int n when n >= 2 -> n
    | _ -> die "bad stage count"
  in
  let names =
    match get "doc" doc "variants" with
    | Json.List vs -> List.map (check_variant ~label:"variant") vs
    | _ -> die "variants is not a list"
  in
  List.iter
    (fun want ->
      if not (List.mem want names) then die "missing variant %s" want)
    [
      "cascade12/compiled-scalar";
      "cascade12/fused-scalar";
      "cascade12/compiled-batch";
      "cascade12/fused-batch";
      "ip/compiled-scalar";
      "ip/fused-scalar";
    ];
  check_regions ~stages doc;
  let speedup = number "doc" (get "doc" doc "speedup_cascade_scalar") in
  let bar = if smoke then 1.0 else 2.0 in
  if speedup < bar then
    die "cascade speedup %.2fx below the %.1fx bar" speedup bar;
  print_endline "ok"
