let split s =
  let s = String.trim s in
  if String.equal s "" then []
  else begin
    let args = ref [] in
    let buf = Buffer.create 16 in
    let depth = ref 0 in
    let in_string = ref false in
    let flush () =
      args := String.trim (Buffer.contents buf) :: !args;
      Buffer.clear buf
    in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      let c = s.[!i] in
      (if !in_string then begin
         Buffer.add_char buf c;
         if c = '\\' && !i + 1 < n then begin
           Buffer.add_char buf s.[!i + 1];
           incr i
         end
         else if c = '"' then in_string := false
       end
       else
         match c with
         | '"' ->
             in_string := true;
             Buffer.add_char buf c
         | '(' | '[' | '{' ->
             incr depth;
             Buffer.add_char buf c
         | ')' | ']' | '}' ->
             decr depth;
             Buffer.add_char buf c
         | ',' when !depth = 0 -> flush ()
         | c -> Buffer.add_char buf c);
      incr i
    done;
    flush ();
    List.rev !args
  end

let unsplit args = String.concat ", " args

let is_word_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

let substitute bindings s =
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '$' && !i + 1 < n then begin
      let braced = s.[!i + 1] = '{' in
      let start = if braced then !i + 2 else !i + 1 in
      let stop = ref start in
      while !stop < n && is_word_char s.[!stop] do
        incr stop
      done;
      let name = String.sub s start (!stop - start) in
      let valid_close = (not braced) || (!stop < n && s.[!stop] = '}') in
      match
        if name <> "" && valid_close then List.assoc_opt ("$" ^ name) bindings
        else None
      with
      | Some value ->
          Buffer.add_string buf value;
          i := if braced then !stop + 1 else !stop
      | None ->
          Buffer.add_char buf '$';
          incr i
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let keyword arg =
  match String.index_opt arg ' ' with
  | None ->
      if arg <> "" && String.uppercase_ascii arg = arg
         && String.exists (fun c -> c >= 'A' && c <= 'Z') arg
      then Some (arg, "")
      else None
  | Some i ->
      let kw = String.sub arg 0 i in
      if kw <> "" && String.uppercase_ascii kw = kw
         && String.exists (fun c -> c >= 'A' && c <= 'Z') kw
      then Some (kw, String.trim (String.sub arg i (String.length arg - i)))
      else None

let parse_bool s =
  match String.lowercase_ascii (String.trim s) with
  | "true" | "1" | "yes" -> Some true
  | "false" | "0" | "no" -> Some false
  | _ -> None

let parse_int s = int_of_string_opt (String.trim s)
