(* Multiple-router optimization (paper §7.2, Fig. 7): combine a router
   with the hosts on its links, eliminate ARP on the point-to-point
   links, and extract the optimized router back out.

   Run with:  dune exec examples/multirouter.exe *)

module Router = Oclick_graph.Router
module Combine = Oclick_optim.Combine

let () =
  Oclick_elements.register_all ();
  let interfaces = Oclick.Ip_router.standard_interfaces 2 in
  let router = Oclick.Ip_router.graph (Oclick.Ip_router.config interfaces) in
  (* Describe the two attached hosts as Click configurations too. *)
  let hosts =
    List.mapi
      (fun i (itf : Oclick.Ip_router.interface) ->
        let ip = itf.if_net + 2 in
        let eth =
          Oclick_packet.Ethaddr.of_string_exn
            (Printf.sprintf "00:00:c0:bb:%02x:02" i)
        in
        ( Printf.sprintf "host%d" i,
          Oclick.Ip_router.graph (Oclick.Ip_router.host_config ~ip ~eth) ))
      interfaces
  in
  let links =
    List.concat
      (List.mapi
         (fun i (itf : Oclick.Ip_router.interface) ->
           let h = Printf.sprintf "host%d" i in
           [
             {
               Combine.lk_from_router = "router";
               lk_from_device = itf.if_device;
               lk_to_router = h;
               lk_to_device = "eth0";
             };
             {
               Combine.lk_from_router = h;
               lk_from_device = "eth0";
               lk_to_router = "router";
               lk_to_device = itf.if_device;
             };
           ])
         interfaces)
  in
  (* click-combine | click-xform | click-uncombine *)
  let combined =
    match Combine.combine (("router", router) :: hosts) ~links with
    | Ok c -> c
    | Error e -> failwith e
  in
  Printf.printf "combined configuration: %d elements (router %d + hosts)\n"
    (Router.size combined) (Router.size router);
  let transformed, n =
    match
      Oclick_optim.Xform.run
        ~patterns:(Oclick_optim.Patterns.arp_elimination ())
        combined
    with
    | Ok r -> r
    | Error e -> failwith e
  in
  Printf.printf "ARP elimination: %d replacements\n" n;
  assert (n = 2);
  let extracted =
    match Combine.uncombine transformed ~name:"router" with
    | Ok r -> r
    | Error e -> failwith e
  in
  let has_class g cls =
    List.exists
      (fun i -> String.equal (Router.class_of g i) cls)
      (Router.indices g)
  in
  Printf.printf "router before: ARPQuerier %b; after: ARPQuerier %b, \
                 EtherEncap %b\n"
    (has_class router "ARPQuerier")
    (has_class extracted "ARPQuerier")
    (has_class extracted "EtherEncap");
  assert (not (has_class extracted "ARPQuerier"));
  assert (has_class extracted "EtherEncap");
  print_endline "--- extracted router configuration ---";
  print_string (Oclick_lang.Printer.to_string (Router.to_ast extracted));
  print_endline "multirouter OK"
