examples/firewall.ml: Oclick_classifier Oclick_packet Printf String Sys
