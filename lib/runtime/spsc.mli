(** Bounded lock-free single-producer/single-consumer ring.

    The cross-domain handoff primitive of the sharded datapath: when the
    partitioner cuts the router graph at a Queue, the queue's push half
    runs on the producing domain and its pull half on the consuming
    domain, exchanging packets through one of these rings — a push/pull
    pair with no locks on the hot path.

    Slots hold elements directly (empty slots hold a caller-supplied
    dummy value), so pushing allocates nothing: a packet descriptor
    crosses the domain cut with its payload bytes staying put in the
    off-heap arena and zero words added to either minor heap.

    Exactly one domain may call {!push} and exactly one domain may call
    {!pop}/{!pop_into} (they may be the same domain). The indices are
    [Atomic.t] cells allocated with padding between them, so the
    producer's and the consumer's counters do not share a cache line
    (OCaml gives no hard layout guarantee, but separately-allocated
    atomics with a dead spacer between them do not false-share in
    practice). *)

type 'a t

val create : dummy:'a -> int -> 'a t
(** [create ~dummy capacity] — a ring holding at most [capacity]
    elements (rounded up to a power of two internally; the stated
    capacity is still enforced exactly). [dummy] fills empty slots and
    is never returned. Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> bool
(** Producer side: enqueue, or return [false] if the ring is full. *)

val pop : 'a t -> 'a option
(** Consumer side: dequeue the oldest element, or [None] if empty. *)

val pop_into : 'a t -> 'a array -> int -> int
(** [pop_into t dst max] dequeues up to [min max (Array.length dst)]
    elements into [dst.(0..)] and returns how many were moved — the
    batch drain used by ring-backed Queue pulls: two atomic operations
    per batch rather than two per element, and no [option] boxing. *)

val length : 'a t -> int
(** Racy but bounded estimate of the occupancy — exact when read from
    either endpoint with the other side quiescent; monitoring only. *)

val is_empty : 'a t -> bool
(** [length t = 0]; same caveat as {!length}. *)
