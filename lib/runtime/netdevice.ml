class type t = object
  method device_name : string
  method rx : unit -> Oclick_packet.Packet.t option
  method rx_batch : Oclick_packet.Packet.t array -> int
  method tx : Oclick_packet.Packet.t -> bool
  method tx_ready : bool
  method tx_space : int
end

class queue_device name ?(tx_capacity = max_int) () =
  object
    val rx_q : Oclick_packet.Packet.t Queue.t = Queue.create ()
    val tx_q : Oclick_packet.Packet.t Queue.t = Queue.create ()
    val mutable sent = 0
    method device_name : string = name
    method rx () = Queue.take_opt rx_q

    method rx_batch (dst : Oclick_packet.Packet.t array) =
      let want = min (Array.length dst) (Queue.length rx_q) in
      for i = 0 to want - 1 do
        dst.(i) <- Queue.take rx_q
      done;
      want

    method tx p =
      if Queue.length tx_q >= tx_capacity then false
      else begin
        Queue.add p tx_q;
        sent <- sent + 1;
        true
      end

    method tx_ready = Queue.length tx_q < tx_capacity
    method tx_space = tx_capacity - Queue.length tx_q
    method inject p = Queue.add p rx_q
    method collect = Queue.take_opt tx_q
    method tx_count = sent
  end
