bin/click_check.mli:
