(** The router graph the optimizers manipulate.

    A mutable graph of elements (vertices) and hookups (directed port-to-port
    edges), converted from and to the language AST. The configuration must
    be flattened first: compound classes are rejected. The graph also
    carries the configuration's requirements and archive members so tools
    can attach generated code (paper §5.1, §5.2). *)

type t

(** {2 Construction and conversion} *)

val of_ast : Oclick_lang.Ast.t -> (t, string) result
(** Fails if the AST still contains compound classes or if a connection
    references an undeclared element. *)

val of_ast_exn : Oclick_lang.Ast.t -> t
val to_ast : t -> Oclick_lang.Ast.t
val parse_string : string -> (t, string) result
(** Parse, flatten, and convert; convenience for tools. Accepts archives
    (the ["config"] member is used and other members are preserved). *)

val to_string : t -> string
(** Render via {!to_ast}; if the archive has non-config members the result
    is an archive, otherwise plain configuration text. *)

(** {2 Elements} *)

val size : t -> int
(** Number of live elements. *)

val indices : t -> int list
(** Indices of live elements, in insertion order. *)

val name : t -> int -> string
val class_of : t -> int -> string
val config : t -> int -> string
val set_class : t -> int -> string -> unit
val set_config : t -> int -> string -> unit
val find : t -> string -> int option
val is_live : t -> int -> bool

val add_element : t -> name:string -> cls:string -> config:string -> int
(** Returns the new element's index. Raises [Invalid_argument] if the name
    is taken; use {!fresh_name}. *)

val fresh_name : t -> string -> string
(** [fresh_name t base] is [base] if free, otherwise [base@@N]. *)

val remove_element : t -> int -> unit
(** Removes the element and every hookup touching it. *)

(** {2 Hookups} *)

type hookup = { from_idx : int; from_port : int; to_idx : int; to_port : int }

val hookups : t -> hookup list
val add_hookup : t -> hookup -> unit
val remove_hookup : t -> hookup -> unit

val outputs_of : t -> int -> (int * int * int) list
(** [(from_port, to_idx, to_port)] for each hookup leaving the element,
    sorted by port. *)

val inputs_of : t -> int -> (int * int * int) list
(** [(to_port, from_idx, from_port)] for each hookup entering the element,
    sorted by port. *)

val output_port_count : t -> int -> int
val input_port_count : t -> int -> int

(** {2 Whole-configuration data} *)

val requirements : t -> string list
val add_requirement : t -> string -> unit
val archive : t -> Oclick_lang.Archive.t
val set_archive_member : t -> name:string -> body:string -> unit
val copy : t -> t
(** A deep, independent copy. *)
