bin/click_combine.mli:
