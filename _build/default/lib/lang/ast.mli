(** Abstract syntax for the Click configuration language.

    A configuration is a set of named elements, the connections between
    their ports, [elementclass] definitions (compound elements), and
    [require] statements. The language is declarative: it only describes
    the router graph (paper §5.2). *)

type element = {
  e_name : string;  (** unique element name, e.g. ["ip_cl"] or ["Queue@3"] *)
  e_class : class_expr;
  e_config : string;  (** raw configuration string, unparsed *)
}

and class_expr =
  | Cname of string  (** a class referenced by name *)
  | Ccompound of compound  (** an anonymous inline compound class *)

and compound = {
  formals : string list;  (** parameter names, each starting with ['$'] *)
  body : t;
      (** statements of the body; connections may reference the
          pseudo-elements ["input"] and ["output"] *)
}

and connection = {
  c_from : string;
  c_from_port : int;
  c_to : string;
  c_to_port : int;
}

and t = {
  elements : element list;  (** in declaration order *)
  connections : connection list;
  classes : (string * compound) list;  (** [elementclass] definitions *)
  requirements : string list;
}

val empty : t

val find_element : t -> string -> element option
val class_name : class_expr -> string
(** The printable name of a class expression; anonymous compounds render
    as ["<compound>"]. *)

val element_names : t -> string list
val declared_classes : t -> string list
(** Names bound by [elementclass], innermost configurations excluded. *)

val used_classes : t -> string list
(** Class names instantiated by at least one element (recursively including
    compound bodies), without duplicates. *)

val rename_element : t -> old_name:string -> new_name:string -> t
(** Renames an element and every connection endpoint that references it. *)

val remove_element : t -> string -> t
(** Removes an element and all connections touching it. *)

val add_element : t -> element -> t
val add_connection : t -> connection -> t

val input_port_count : t -> string -> int
(** Number of distinct input ports of the named element that have at least
    one connection (max used index + 1). *)

val output_port_count : t -> string -> int

val connections_to : t -> string -> connection list
val connections_from : t -> string -> connection list
