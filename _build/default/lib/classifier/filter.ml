(* IP header field offsets, packet data starting at the IP header. *)
let off_tos = 1
let off_frag = 6
let off_ttl = 8
let off_proto = 9
let off_src = 12
let off_dst = 16
let off_sport = 20
let off_dport = 22
let off_icmp_type = 20
let off_tcp_flags = 33

let proto_names =
  [ ("icmp", 1); ("igmp", 2); ("tcp", 6); ("udp", 17); ("gre", 47) ]

let port_names =
  [
    ("ftp", 21); ("ssh", 22); ("telnet", 23); ("smtp", 25); ("dns", 53);
    ("domain", 53); ("bootps", 67); ("bootpc", 68); ("tftp", 69);
    ("www", 80); ("http", 80); ("pop3", 110); ("auth", 113); ("nntp", 119);
    ("ntp", 123); ("imap", 143); ("snmp", 161); ("snmptrap", 162);
    ("https", 443); ("syslog", 514); ("rip", 520);
  ]

exception Fail of string

let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

type dir = Src | Dst | Src_or_dst | Src_and_dst

(* --- primitive tests ------------------------------------------------- *)

let t_proto p = Bexpr.test_u8 ~offset:off_proto p
let t_simple_header = Bexpr.test_u8 ~offset:0 0x45 (* version 4, hl 5 *)
let t_unfragmented = Bexpr.test_u16 ~offset:off_frag ~mask:0x1fff 0

let t_host dir addr =
  let src = Bexpr.test_u32 ~offset:off_src addr
  and dst = Bexpr.test_u32 ~offset:off_dst addr in
  match dir with
  | Src -> src
  | Dst -> dst
  | Src_or_dst -> Bexpr.Or (src, dst)
  | Src_and_dst -> Bexpr.And (src, dst)

let t_net dir (addr, mask) =
  let src = Bexpr.test_u32 ~offset:off_src ~mask (addr land mask)
  and dst = Bexpr.test_u32 ~offset:off_dst ~mask (addr land mask) in
  match dir with
  | Src -> src
  | Dst -> dst
  | Src_or_dst -> Bexpr.Or (src, dst)
  | Src_and_dst -> Bexpr.And (src, dst)

type port_spec = Port_exact of int | Port_range of int * int

(* A contiguous port range decomposes into O(log) masked equality tests:
   greedily peel the largest aligned power-of-two block. *)
let range_blocks lo hi =
  let rec go lo acc =
    if lo > hi then List.rev acc
    else begin
      let rec grow size =
        if lo land ((2 * size) - 1) = 0 && lo + (2 * size) - 1 <= hi then
          grow (2 * size)
        else size
      in
      let size = grow 1 in
      go (lo + size) ((lo, size) :: acc)
    end
  in
  go lo []

let port_test ~offset = function
  | Port_exact p -> Bexpr.test_u16 ~offset p
  | Port_range (lo, hi) ->
      Bexpr.disj
        (List.map
           (fun (base, size) ->
             Bexpr.test_u16 ~offset ~mask:(0xffff land lnot (size - 1)) base)
           (range_blocks lo hi))

let t_port dir protos port =
  let proto_test =
    match protos with
    | [] -> Bexpr.Or (t_proto 6, t_proto 17)
    | l -> Bexpr.disj (List.map t_proto l)
  in
  let src = port_test ~offset:off_sport port
  and dst = port_test ~offset:off_dport port in
  let port_test =
    match dir with
    | Src -> src
    | Dst -> dst
    | Src_or_dst -> Bexpr.Or (src, dst)
    | Src_and_dst -> Bexpr.And (src, dst)
  in
  Bexpr.conj [ t_simple_header; t_unfragmented; proto_test; port_test ]

(* --- tokenization ---------------------------------------------------- *)

type token = Word of string | Lparen | Rparen | Op_and | Op_or | Op_not

let tokenize s =
  let toks = ref [] in
  let n = String.length s in
  let i = ref 0 in
  let word_char c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '/' | '_' | '-' | ':' ->
        true
    | _ -> false
  in
  while !i < n do
    (match s.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '(' ->
        toks := Lparen :: !toks;
        incr i
    | ')' ->
        toks := Rparen :: !toks;
        incr i
    | '!' ->
        toks := Op_not :: !toks;
        incr i
    | '&' ->
        if !i + 1 < n && s.[!i + 1] = '&' then begin
          toks := Op_and :: !toks;
          i := !i + 2
        end
        else failf "single '&' in expression"
    | '|' ->
        if !i + 1 < n && s.[!i + 1] = '|' then begin
          toks := Op_or :: !toks;
          i := !i + 2
        end
        else failf "single '|' in expression"
    | c when word_char c ->
        let start = !i in
        while !i < n && word_char s.[!i] do
          incr i
        done;
        let w = String.lowercase_ascii (String.sub s start (!i - start)) in
        toks :=
          (match w with
          | "and" -> Op_and
          | "or" -> Op_or
          | "not" -> Op_not
          | w -> Word w)
          :: !toks
    | c -> failf "unexpected character %C in expression" c);
  done;
  List.rev !toks

(* --- recursive-descent parser ---------------------------------------- *)

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let advance st =
  match st.toks with
  | [] -> failf "unexpected end of expression"
  | t :: rest ->
      st.toks <- rest;
      t

let expect_word st what =
  match advance st with
  | Word w -> w
  | _ -> failf "expected %s" what

let parse_number st what =
  let w = expect_word st what in
  match int_of_string_opt w with
  | Some v -> v
  | None -> failf "expected %s, got %S" what w

let parse_port_value st =
  let w = expect_word st "port number" in
  let one s =
    match int_of_string_opt s with
    | Some v when v >= 0 && v <= 0xffff -> v
    | Some _ -> failf "port %S out of range" s
    | None -> (
        match List.assoc_opt s port_names with
        | Some v -> v
        | None -> failf "unknown port %S" s)
  in
  match String.index_opt w '-' with
  | Some i when i > 0 && i < String.length w - 1 ->
      let lo = one (String.sub w 0 i)
      and hi = one (String.sub w (i + 1) (String.length w - i - 1)) in
      if lo > hi then failf "empty port range %S" w;
      Port_range (lo, hi)
  | _ -> Port_exact (one w)

let parse_proto_value w =
  match int_of_string_opt w with
  | Some v when v >= 0 && v <= 255 -> v
  | Some _ -> failf "protocol %S out of range" w
  | None -> (
      match List.assoc_opt w proto_names with
      | Some v -> v
      | None -> failf "unknown protocol %S" w)

let parse_addr w =
  match Oclick_packet.Ipaddr.of_string w with
  | Some a -> a
  | None -> failf "bad IP address %S" w

let parse_prefix w =
  match Oclick_packet.Ipaddr.parse_prefix w with
  | Some p -> p
  | None -> failf "bad IP prefix %S" w

(* Parses tests that may follow a direction qualifier. *)
let rec parse_directed st dir =
  match advance st with
  | Word "host" -> t_host dir (parse_addr (expect_word st "IP address"))
  | Word "net" -> t_net dir (parse_prefix (expect_word st "IP prefix"))
  | Word "port" -> t_port dir [] (parse_port_value st)
  | Word (("tcp" | "udp") as proto) -> (
      match advance st with
      | Word "port" -> t_port dir [ List.assoc proto proto_names ] (parse_port_value st)
      | _ -> failf "expected 'port' after %S in directed test" proto)
  | _ -> failf "expected host/net/port after direction"

and parse_test st =
  match advance st with
  | Word "true" | Word "all" -> Bexpr.True
  | Word "false" | Word "none" -> Bexpr.False
  | Word "src" -> (
      match peek st with
      | Some Op_or -> (
          (* "src or dst ..." *)
          ignore (advance st);
          match advance st with
          | Word "dst" -> parse_directed st Src_or_dst
          | _ -> failf "expected 'dst' after 'src or'")
      | Some Op_and -> (
          ignore (advance st);
          match advance st with
          | Word "dst" -> parse_directed st Src_and_dst
          | _ -> failf "expected 'dst' after 'src and'")
      | _ -> parse_directed st Src)
  | Word "dst" -> parse_directed st Dst
  | Word "host" -> t_host Src_or_dst (parse_addr (expect_word st "IP address"))
  | Word "net" -> t_net Src_or_dst (parse_prefix (expect_word st "IP prefix"))
  | Word "port" -> t_port Src_or_dst [] (parse_port_value st)
  | Word "proto" -> t_proto (parse_proto_value (expect_word st "protocol"))
  | Word "ip" -> (
      match advance st with
      | Word "proto" -> t_proto (parse_proto_value (expect_word st "protocol"))
      | Word "vers" -> Bexpr.test_u8 ~offset:0 ~mask:0xf0 (parse_number st "version" lsl 4)
      | Word "hl" -> Bexpr.test_u8 ~offset:0 ~mask:0x0f (parse_number st "header length")
      | Word "ttl" -> Bexpr.test_u8 ~offset:off_ttl (parse_number st "ttl")
      | Word "tos" -> Bexpr.test_u8 ~offset:off_tos (parse_number st "tos")
      | Word "frag" -> Bexpr.Not (Bexpr.test_u16 ~offset:off_frag ~mask:0x3fff 0)
      | Word "unfrag" -> Bexpr.test_u16 ~offset:off_frag ~mask:0x3fff 0
      | _ -> failf "unknown 'ip' test")
  | Word "icmp" -> (
      match peek st with
      | Some (Word "type") ->
          ignore (advance st);
          Bexpr.conj
            [
              t_proto 1;
              t_simple_header;
              t_unfragmented;
              Bexpr.test_u8 ~offset:off_icmp_type (parse_number st "icmp type");
            ]
      | _ -> t_proto 1)
  | Word (("tcp" | "udp") as proto) -> (
      match peek st with
      | Some (Word "port") | Some (Word "src") | Some (Word "dst") -> (
          let dir =
            match advance st with
            | Word "port" -> Src_or_dst
            | Word "src" -> (
                match advance st with
                | Word "port" -> Src
                | _ -> failf "expected 'port'")
            | Word "dst" -> (
                match advance st with
                | Word "port" -> Dst
                | _ -> failf "expected 'port'")
            | _ -> assert false
          in
          t_port dir [ List.assoc proto proto_names ] (parse_port_value st))
      | Some (Word "opt") when proto = "tcp" -> (
          ignore (advance st);
          let flag =
            match expect_word st "tcp flag" with
            | "fin" -> 0x01
            | "syn" -> 0x02
            | "rst" -> 0x04
            | "psh" -> 0x08
            | "ack" -> 0x10
            | "urg" -> 0x20
            | f -> failf "unknown tcp flag %S" f
          in
          Bexpr.conj
            [
              t_proto 6;
              t_simple_header;
              t_unfragmented;
              Bexpr.test_u8 ~offset:off_tcp_flags ~mask:flag flag;
            ])
      | _ -> t_proto (List.assoc proto proto_names))
  | Word w -> failf "unknown test %S" w
  | Lparen ->
      let e = parse_or st in
      (match advance st with
      | Rparen -> e
      | _ -> failf "expected ')'")
  | Rparen -> failf "unexpected ')'"
  | Op_and | Op_or -> failf "misplaced operator"
  | Op_not -> Bexpr.Not (parse_test st)

and parse_and st =
  let lhs = parse_test st in
  match peek st with
  | Some Op_and ->
      ignore (advance st);
      Bexpr.And (lhs, parse_and st)
  | _ -> lhs

and parse_or st =
  let lhs = parse_and st in
  match peek st with
  | Some Op_or ->
      ignore (advance st);
      Bexpr.Or (lhs, parse_or st)
  | _ -> lhs

let parse s =
  match
    let st = { toks = tokenize s } in
    let e = parse_or st in
    if st.toks <> [] then failf "trailing tokens in expression %S" s;
    e
  with
  | e -> Ok e
  | exception Fail msg -> Error msg

(* --- configurations --------------------------------------------------- *)

let parse_ipfilter_config config =
  let args = Oclick_lang.Args.split config in
  if args = [] then Error "IPFilter needs at least one rule"
  else begin
    let parse_rule arg =
      let arg = String.trim arg in
      match String.index_opt arg ' ' with
      | None -> (
          match arg with
          | "allow" -> Ok (0, "all")
          | "deny" | "drop" -> Ok (Tree.drop, "all")
          | _ -> Error (Printf.sprintf "bad IPFilter rule %S" arg))
      | Some i -> (
          let action = String.sub arg 0 i in
          let rest = String.trim (String.sub arg i (String.length arg - i)) in
          match action with
          | "allow" -> Ok (0, rest)
          | "deny" | "drop" -> Ok (Tree.drop, rest)
          | _ -> (
              match int_of_string_opt action with
              | Some out when out >= 0 -> Ok (out, rest)
              | _ -> Error (Printf.sprintf "bad IPFilter action %S" action)))
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | arg :: rest -> (
          match parse_rule arg with
          | Error e -> Error e
          | Ok (output, expr_s) -> (
              match parse expr_s with
              | Error e -> Error e
              | Ok expr ->
                  go ({ Bexpr.r_expr = expr; r_output = output } :: acc) rest))
    in
    go [] args
  end

let parse_ipclassifier_config config =
  let args = Oclick_lang.Args.split config in
  if args = [] then Error "IPClassifier needs at least one pattern"
  else begin
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | arg :: rest -> (
          let arg = String.trim arg in
          let parsed = if String.equal arg "-" then Ok Bexpr.True else parse arg in
          match parsed with
          | Error e -> Error e
          | Ok expr ->
              go (i + 1) ({ Bexpr.r_expr = expr; r_output = i } :: acc) rest)
    in
    go 0 [] args
  end

let noutputs_of_rules rules =
  List.fold_left (fun acc (r : Bexpr.rule) -> max acc (r.r_output + 1)) 1 rules

let ipfilter_tree config =
  match parse_ipfilter_config config with
  | Error e -> Error e
  | Ok rules -> Ok (Bexpr.compile_rules ~noutputs:(noutputs_of_rules rules) rules)

let ipclassifier_tree config =
  match parse_ipclassifier_config config with
  | Error e -> Error e
  | Ok rules ->
      Ok (Bexpr.compile_rules ~noutputs:(List.length rules) rules)
