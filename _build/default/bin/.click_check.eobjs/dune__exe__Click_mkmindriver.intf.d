bin/click_mkmindriver.mli:
