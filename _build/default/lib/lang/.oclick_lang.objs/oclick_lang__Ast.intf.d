lib/lang/ast.mli:
