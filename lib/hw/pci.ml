type txn = { tx_bytes : int; tx_done : unit -> unit }

type t = {
  engine : Engine.t;
  bytes_per_sec : int;
  overhead_ns : int;
  stall_windows : (int * int) list; (* (start_ns, len_ns): arbiter frozen *)
  mutable queues : txn Queue.t array; (* per requester, grown on demand *)
  mutable last_granted : int;
  mutable bus_busy : bool;
  mutable stalled : bool;
  mutable stall_ns : int;
  mutable busy_ns : int;
  mutable bytes_moved : int;
  mutable transactions : int;
}

let create engine ~bytes_per_sec ?(overhead_ns = 120) ?(stall_windows = []) ()
    =
  {
    engine;
    bytes_per_sec;
    overhead_ns;
    stall_windows;
    queues = Array.init 4 (fun _ -> Queue.create ());
    last_granted = -1;
    bus_busy = false;
    stalled = false;
    stall_ns = 0;
    busy_ns = 0;
    bytes_moved = 0;
    transactions = 0;
  }

(* If the arbiter is inside an injected stall window, the absolute time
   the longest covering window ends. *)
let stall_until t now =
  List.fold_left
    (fun acc (start, len) ->
      if now >= start && now < start + len then
        match acc with
        | Some u when u >= start + len -> acc
        | _ -> Some (start + len)
      else acc)
    None t.stall_windows

let ensure_requester t r =
  if r >= Array.length t.queues then begin
    let bigger = Array.init (max (r + 1) (2 * Array.length t.queues))
        (fun i -> if i < Array.length t.queues then t.queues.(i) else Queue.create ())
    in
    t.queues <- bigger
  end

(* Round-robin: the next non-empty queue after the last granted one. *)
let next_requester t =
  let n = Array.length t.queues in
  let rec scan k =
    if k > n then None
    else begin
      let r = (t.last_granted + k) mod n in
      if not (Queue.is_empty t.queues.(r)) then Some r else scan (k + 1)
    end
  in
  scan 1

let rec grant t =
  if (not t.bus_busy) && not t.stalled then begin
    match stall_until t (Engine.now t.engine) with
    | Some until ->
        (* Injected arbitration stall: the bus sits idle (from the
           devices' point of view, busy) until the window ends. *)
        t.stalled <- true;
        let now = Engine.now t.engine in
        t.stall_ns <- t.stall_ns + (until - now);
        Engine.schedule t.engine ~at:until (fun () ->
            t.stalled <- false;
            grant t)
    | None -> (
        match next_requester t with
        | None -> ()
        | Some r ->
            let txn = Queue.pop t.queues.(r) in
            t.last_granted <- r;
            t.bus_busy <- true;
            let data_ns = txn.tx_bytes * 1_000_000_000 / t.bytes_per_sec in
            let cost = t.overhead_ns + data_ns in
            t.busy_ns <- t.busy_ns + cost;
            t.bytes_moved <- t.bytes_moved + txn.tx_bytes;
            t.transactions <- t.transactions + 1;
            Engine.schedule_after t.engine ~delay:cost (fun () ->
                t.bus_busy <- false;
                txn.tx_done ();
                grant t))
  end

let request t ~requester ~bytes k =
  ensure_requester t requester;
  Queue.add { tx_bytes = bytes; tx_done = k } t.queues.(requester);
  grant t

let busy_ns t = t.busy_ns
let stall_ns t = t.stall_ns
let bytes_moved t = t.bytes_moved
let transactions t = t.transactions

let reset_counters t =
  t.busy_ns <- 0;
  t.bytes_moved <- 0;
  t.transactions <- 0
