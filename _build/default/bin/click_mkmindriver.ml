(* click-mkmindriver: generate a minimal driver source registering only
   the element classes a configuration needs. *)

open Cmdliner

let run list_only input =
  let source = Tool_common.read_input input in
  let router = Tool_common.parse_router source in
  if list_only then
    List.iter print_endline (Oclick_optim.Mkmindriver.required_classes router)
  else print_string (Oclick_optim.Mkmindriver.driver_source router)

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List required classes only.")

let () =
  Tool_common.run_tool "click-mkmindriver"
    "Generate a minimal element driver for a configuration."
    Term.(const run $ list_arg $ Tool_common.input_arg)
