(* Multicore scaling: the 8-port IP router sharded across simulated CPUs.

   Unlike the batch and compile sections, which measure real wall clock,
   this section runs in the simulated testbed so the scaling numbers are
   deterministic: the graph is partitioned at Queue boundaries exactly as
   the real multi-domain runner partitions it (lib/parallel), and each
   shard's scheduler advances its own simulated clock — [domains] CPUs
   progressing concurrently in simulated time. The router is offered
   well past single-CPU saturation, so forwarded throughput measures how
   much of the partitioned work the extra CPUs actually absorb.

   The grid is {1,2,4} domains x {scalar, batch 32} x {interpreted,
   compiled}. Speedups are per mode, against that mode's own
   single-domain run. *)

module Testbed = Oclick_hw.Testbed
module Platform = Oclick_hw.Platform
module Partition = Oclick_parallel.Partition

let nports = 8
let platform = { Platform.p2 with Platform.p_nports = nports }

(* Every host sends across the router: port i to port (i+4) mod 8. *)
let flows =
  List.init nports (fun i ->
      { Testbed.fl_src = i; Testbed.fl_dst = (i + 4) mod nports })

let graph = Common.base_graph nports
let domain_counts = [ 1; 2; 4 ]

let modes =
  [
    ("interpreted scalar", 1, false);
    ("interpreted batch 32", 32, false);
    ("compiled scalar", 1, true);
    ("compiled batch 32", 32, true);
  ]

let measure ~domains ~batch ~compile ~input_pps ~duration_ms ~warmup_ms =
  match
    Testbed.run ~duration_ms ~warmup_ms ~platform ~graph ~flows ~domains
      ~batch ~compile ~input_pps ()
  with
  | Ok r -> r
  | Error e -> failwith ("parallel bench: " ^ e)

let partition_json ~domains =
  match Partition.compute ~domains graph with
  | Error e -> failwith ("parallel bench: " ^ e)
  | Ok p ->
      Common.J_obj
        [
          ("domains", Common.J_int domains);
          ( "shard_sizes",
            Common.J_list
              (Array.to_list
                 (Array.map
                    (fun n -> Common.J_int n)
                    (Partition.shard_counts p))) );
          ("cuts", Common.J_int (List.length p.Partition.pt_cuts));
          ("inserted_stages", Common.J_int (2 * List.length p.Partition.pt_inserted));
        ]

let run () =
  Common.section "parallel: multicore scaling (simulated testbed)";
  (* 2M pps aggregate saturates one simulated 700 MHz CPU several times
     over; each Pro1000 host caps at 1M pps, so the offered load stays
     within the NIC model. *)
  let input_pps = 2_000_000 in
  let duration_ms, warmup_ms = if !Common.smoke then (8, 4) else (60, 30) in
  Printf.printf
    "IP router (%d interfaces), %d crossing flows, %d pps offered \
     (overload)\n\n"
    nports (List.length flows) input_pps;
  Printf.printf "%-22s %8s %14s %10s %8s\n" "variant" "domains" "fwd pps"
    "cpu util" "speedup";
  let results =
    List.map
      (fun (name, batch, compile) ->
        let runs =
          List.map
            (fun domains ->
              ( domains,
                measure ~domains ~batch ~compile ~input_pps ~duration_ms
                  ~warmup_ms ))
            domain_counts
        in
        let base =
          match runs with
          | (1, r) :: _ -> r.Testbed.r_forwarded_pps
          | _ -> assert false
        in
        List.iter
          (fun (domains, r) ->
            Printf.printf "%-22s %8d %14.0f %10.2f %7.2fx\n" name domains
              r.Testbed.r_forwarded_pps r.Testbed.r_cpu_utilization
              (r.Testbed.r_forwarded_pps /. base))
          runs;
        print_newline ();
        (name, batch, compile, runs, base))
      modes
  in
  let speedup_of name' =
    match
      List.find_opt (fun (name, _, _, _, _) -> name = name') results
    with
    | Some (_, _, _, runs, base) -> (
        match List.assoc_opt 4 runs with
        | Some r -> r.Testbed.r_forwarded_pps /. base
        | None -> 1.0)
    | None -> 1.0
  in
  Printf.printf
    "speedup at 4 domains: interpreted batch 32 %.2fx, compiled batch 32 \
     %.2fx\n"
    (speedup_of "interpreted batch 32")
    (speedup_of "compiled batch 32");
  Common.write_json ~section:"parallel"
    (Common.J_obj
       [
         ("section", Common.J_string "parallel");
         ("ports", Common.J_int nports);
         ("input_pps", Common.J_int input_pps);
         ("duration_ms", Common.J_int duration_ms);
         ("smoke", Common.J_bool !Common.smoke);
         ( "partitions",
           Common.J_list
             (List.map
                (fun d -> partition_json ~domains:d)
                (List.filter (fun d -> d > 1) domain_counts)) );
         ( "variants",
           Common.J_list
             (List.concat_map
                (fun (name, batch, compile, runs, base) ->
                  List.map
                    (fun (domains, r) ->
                      Common.J_obj
                        [
                          ("name", Common.J_string name);
                          ("domains", Common.J_int domains);
                          ("batch", Common.J_int batch);
                          ("compiled", Common.J_bool compile);
                          ( "forwarded_pps",
                            Common.J_float r.Testbed.r_forwarded_pps );
                          ( "cpu_utilization",
                            Common.J_float r.Testbed.r_cpu_utilization );
                          ( "speedup",
                            Common.J_float
                              (r.Testbed.r_forwarded_pps /. base) );
                        ])
                    runs)
                results) );
         ( "speedup_4dom_batch",
           Common.J_float (speedup_of "interpreted batch 32") );
         ( "speedup_4dom_batch_compiled",
           Common.J_float (speedup_of "compiled batch 32") );
       ])
