lib/elements/oclick_elements.mli: Oclick_classifier
