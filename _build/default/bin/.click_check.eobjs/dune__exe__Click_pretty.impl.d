bin/click_pretty.ml: Arg Cmdliner Oclick_graph Oclick_lang Term Tool_common
