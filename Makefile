# Convenience wrappers around dune. `make bench-smoke` (also run as part
# of `make test` via the @bench-smoke alias) is the sub-second sanity run
# of the wall-clock batch benchmark; `make compile-smoke` is the same for
# the interpreted-vs-compiled datapath section and `make parallel-smoke`
# for the multicore-scaling section; `make bench` regenerates every
# section, and `make bench-json` refreshes the committed BENCH_batch.json,
# BENCH_compile.json, and BENCH_obs.json baselines in the repo root.
# `make bench-parallel` refreshes BENCH_parallel.json (the multicore
# scaling grid), `make bench-overload` refreshes BENCH_overload.json
# (offered-load-vs-goodput curves under adversarial traffic),
# `make bench-lpm` refreshes BENCH_lpm.json (DIR-24-8 trie vs linear
# route lookup up to 1M routes — the full run takes a few minutes),
# `make bench-fdd` refreshes BENCH_fdd.json (compiled vs FDD-fused
# datapath on the cascaded-classifier config), `make bench-zerocopy`
# refreshes BENCH_zerocopy.json (off-heap slab packet buffers vs the
# heap-Bytes representations: wall clock plus minor-heap words per
# forwarded packet), `make bench-tune` refreshes BENCH_tune.json (the
# profile-guided autotuning cells and the measured-cost placement
# comparison), and `make bench-all` regenerates every committed
# BENCH_*.json in one go.
# `make obs-smoke` (also part of `dune runtest`) validates
# oclick-report's JSON output against the report schema on the example
# configurations; `make overload-smoke` (likewise part of `dune
# runtest`) runs the overload benchmark on the smoke budget and
# validates its JSON against the curve schema; `make lpm-smoke`,
# `make fdd-smoke`, `make zerocopy-smoke`, and `make tune-smoke` do the
# same for the route-lookup, fusion, zero-copy, and autotuning
# benchmarks.

.PHONY: all build test bench bench-smoke compile-smoke parallel-smoke \
	bench-json bench-parallel bench-overload bench-lpm bench-fdd \
	bench-zerocopy bench-tune bench-all obs-smoke overload-smoke \
	lpm-smoke fdd-smoke zerocopy-smoke tune-smoke clean

all: build

build:
	dune build

test:
	dune runtest

bench: build
	dune exec bench/main.exe

bench-smoke:
	dune build @bench-smoke

compile-smoke:
	dune build @compile-smoke

parallel-smoke:
	dune build @parallel-smoke

bench-json: build
	cd $(CURDIR) && dune exec --no-build bench/main.exe -- batch --json
	cd $(CURDIR) && dune exec --no-build bench/main.exe -- compile --json
	cd $(CURDIR) && dune exec --no-build bench/main.exe -- obs --json

bench-parallel: build
	cd $(CURDIR) && dune exec --no-build bench/main.exe -- parallel --json

bench-overload: build
	cd $(CURDIR) && dune exec --no-build bench/main.exe -- overload --json

bench-lpm: build
	cd $(CURDIR) && dune exec --no-build bench/main.exe -- lpm --json

bench-fdd: build
	cd $(CURDIR) && dune exec --no-build bench/main.exe -- fdd --json

bench-zerocopy: build
	cd $(CURDIR) && dune exec --no-build bench/main.exe -- zerocopy --json

bench-tune: build
	cd $(CURDIR) && dune exec --no-build bench/main.exe -- tune --json

bench-all: bench-json bench-parallel bench-overload bench-lpm bench-fdd \
	bench-zerocopy bench-tune

obs-smoke:
	dune build @obs-smoke

overload-smoke:
	dune build @overload-smoke

lpm-smoke:
	dune build @lpm-smoke

fdd-smoke:
	dune build @fdd-smoke

zerocopy-smoke:
	dune build @zerocopy-smoke

tune-smoke:
	dune build @tune-smoke

clean:
	dune clean
