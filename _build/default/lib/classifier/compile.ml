let compile (t : Tree.t) =
  let memo : ((int -> int) -> int) option array =
    Array.make (Array.length t.nodes) None
  in
  let rec target_fn = function
    | Tree.Leaf k -> fun _ -> k
    | Tree.Node i -> node_fn i

  and node_fn i =
    match memo.(i) with
    | Some f -> f
    | None ->
        let n = t.nodes.(i) in
        let offset = n.offset and mask = n.mask and value = n.value in
        let yes = target_fn n.yes and no = target_fn n.no in
        let f read =
          if read offset land mask = value then yes read else no read
        in
        memo.(i) <- Some f;
        f
  in
  let entry = target_fn t.root in
  fun ~read -> entry read

let compile_count (t : Tree.t) =
  let memo : ((int -> int) -> int -> int * int) option array =
    Array.make (Array.length t.nodes) None
  in
  let rec target_fn = function
    | Tree.Leaf k -> fun _ visited -> (k, visited)
    | Tree.Node i -> node_fn i

  and node_fn i =
    match memo.(i) with
    | Some f -> f
    | None ->
        let n = t.nodes.(i) in
        let offset = n.offset and mask = n.mask and value = n.value in
        let yes = target_fn n.yes and no = target_fn n.no in
        let f read visited =
          if read offset land mask = value then yes read (visited + 1)
          else no read (visited + 1)
        in
        memo.(i) <- Some f;
        f
  in
  let entry = target_fn t.root in
  fun ~read -> entry read 0

let compile_packet t =
  let fast = compile t in
  fun p -> fast ~read:(Tree.packet_read p)
