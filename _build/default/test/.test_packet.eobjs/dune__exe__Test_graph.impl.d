test/test_graph.ml: Alcotest Array List Oclick Oclick_elements Oclick_graph Oclick_lang Oclick_runtime Option Result String
