(** Hand-written lexer for the Click configuration language.

    Configuration strings (the text between an element's parentheses) are
    not tokenized; the parser calls {!read_config} to capture them raw,
    so commas, slashes, and quotes inside configurations never confuse the
    statement grammar. *)

type token =
  | Ident of string
  | Colon_colon  (** [::] *)
  | Arrow  (** [->] *)
  | Comma
  | Semi
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Bar  (** [|], separating compound formals from the body *)
  | Eof

type t

exception Error of string * int
(** Message and 1-based line number. *)

val create : string -> t
val line : t -> int
val next : t -> token
(** Consume and return the next token. *)

val peek : t -> token
(** Look at the next token without consuming it. *)

val read_config : t -> string
(** Read a raw configuration string up to (but not consuming) the balancing
    [Rparen]. Must be called when the last consumed token was {!Lparen}.
    Handles nested parentheses, double-quoted strings with escapes, and
    comments. The result is whitespace-trimmed. *)

val token_to_string : token -> string
