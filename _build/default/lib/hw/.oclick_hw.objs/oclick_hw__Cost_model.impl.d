lib/hw/cost_model.ml: Btb Hashtbl Oclick_runtime String
