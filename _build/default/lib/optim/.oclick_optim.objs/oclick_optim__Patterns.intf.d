lib/optim/patterns.mli: Xform
