(** Protocol header accessors.

    Each submodule reads and writes one header layout at a given offset
    inside a packet's data window. The IP router strips the Ethernet header
    before IP processing, so IP/UDP/ICMP accessors default to offset 0. *)

module Ether : sig
  val header_length : int
  val ethertype_ip : int
  val ethertype_arp : int

  val dst : Packet.t -> Ethaddr.t
  val src : Packet.t -> Ethaddr.t
  val ethertype : Packet.t -> int
  val set_dst : Packet.t -> Ethaddr.t -> unit
  val set_src : Packet.t -> Ethaddr.t -> unit
  val set_ethertype : Packet.t -> int -> unit

  val encap : Packet.t -> dst:Ethaddr.t -> src:Ethaddr.t -> ethertype:int -> unit
  (** Prepends and fills a 14-byte Ethernet header. *)
end

module Ip : sig
  val min_header_length : int
  val proto_icmp : int
  val proto_tcp : int
  val proto_udp : int

  val version : ?off:int -> Packet.t -> int
  val header_length : ?off:int -> Packet.t -> int
  (** Header length in bytes (IHL × 4). *)

  val tos : ?off:int -> Packet.t -> int
  val total_length : ?off:int -> Packet.t -> int
  val ident : ?off:int -> Packet.t -> int
  val dont_fragment : ?off:int -> Packet.t -> bool
  val more_fragments : ?off:int -> Packet.t -> bool
  val fragment_offset : ?off:int -> Packet.t -> int
  (** In 8-byte units. *)

  val ttl : ?off:int -> Packet.t -> int
  val protocol : ?off:int -> Packet.t -> int
  val header_checksum : ?off:int -> Packet.t -> int
  val src : ?off:int -> Packet.t -> Ipaddr.t
  val dst : ?off:int -> Packet.t -> Ipaddr.t

  val set_tos : ?off:int -> Packet.t -> int -> unit
  val set_total_length : ?off:int -> Packet.t -> int -> unit
  val set_ident : ?off:int -> Packet.t -> int -> unit
  val set_flags_fragment :
    ?off:int -> Packet.t -> df:bool -> mf:bool -> frag:int -> unit

  val set_ttl : ?off:int -> Packet.t -> int -> unit
  val set_protocol : ?off:int -> Packet.t -> int -> unit
  val set_src : ?off:int -> Packet.t -> Ipaddr.t -> unit
  val set_dst : ?off:int -> Packet.t -> Ipaddr.t -> unit

  val update_checksum : ?off:int -> Packet.t -> unit
  (** Recomputes and stores the header checksum. *)

  val checksum_valid : ?off:int -> Packet.t -> bool

  val decrement_ttl : ?off:int -> Packet.t -> unit
  (** Decrements TTL and incrementally patches the checksum (RFC 1141). *)

  val write_header :
    ?off:int ->
    Packet.t ->
    src:Ipaddr.t ->
    dst:Ipaddr.t ->
    protocol:int ->
    total_length:int ->
    ?ttl:int ->
    ?tos:int ->
    ?ident:int ->
    unit ->
    unit
  (** Fills a fresh minimal (20-byte) header, including its checksum. *)
end

module Udp : sig
  val header_length : int
  val src_port : ?off:int -> Packet.t -> int
  val dst_port : ?off:int -> Packet.t -> int
  val udp_length : ?off:int -> Packet.t -> int
  val set_src_port : ?off:int -> Packet.t -> int -> unit
  val set_dst_port : ?off:int -> Packet.t -> int -> unit
  val set_udp_length : ?off:int -> Packet.t -> int -> unit
end

module Tcp : sig
  val src_port : ?off:int -> Packet.t -> int
  val dst_port : ?off:int -> Packet.t -> int
  val flags : ?off:int -> Packet.t -> int
  val set_src_port : ?off:int -> Packet.t -> int -> unit
  val set_dst_port : ?off:int -> Packet.t -> int -> unit
  val set_flags : ?off:int -> Packet.t -> int -> unit
  val flag_syn : int
  val flag_ack : int
  val flag_fin : int
  val flag_rst : int
end

module Icmp : sig
  val type_echo_reply : int
  val type_dst_unreachable : int
  val type_redirect : int
  val type_echo : int
  val type_time_exceeded : int
  val type_parameter_problem : int

  val icmp_type : ?off:int -> Packet.t -> int
  val code : ?off:int -> Packet.t -> int
  val set_type : ?off:int -> Packet.t -> int -> unit
  val set_code : ?off:int -> Packet.t -> int -> unit
  val update_checksum : ?off:int -> Packet.t -> len:int -> unit
end

module Arp : sig
  val packet_length : int
  (** Length of an Ethernet/IPv4 ARP packet body (28 bytes). *)

  val op_request : int
  val op_reply : int

  val op : ?off:int -> Packet.t -> int
  val sender_eth : ?off:int -> Packet.t -> Ethaddr.t
  val sender_ip : ?off:int -> Packet.t -> Ipaddr.t
  val target_eth : ?off:int -> Packet.t -> Ethaddr.t
  val target_ip : ?off:int -> Packet.t -> Ipaddr.t

  val write :
    ?off:int ->
    Packet.t ->
    op:int ->
    sender_eth:Ethaddr.t ->
    sender_ip:Ipaddr.t ->
    target_eth:Ethaddr.t ->
    target_ip:Ipaddr.t ->
    unit
  (** Fills a 28-byte Ethernet/IPv4 ARP body at [off]. *)
end

module L4 : sig
  val checksum :
    Packet.t -> ip_off:int -> l4_off:int -> len:int -> int
  (** The TCP/UDP checksum over the IPv4 pseudo-header (source,
      destination, protocol, length) plus [len] bytes of transport header
      and payload at [l4_off]. The checksum field itself must be zeroed
      by the caller first. *)

  val update_udp : Packet.t -> ip_off:int -> unit
  (** Recompute the UDP checksum of the datagram whose IP header is at
      [ip_off] (uses the UDP length field). *)

  val update_tcp : Packet.t -> ip_off:int -> unit
  (** Recompute the TCP checksum (segment length from the IP total
      length). *)

  val udp_valid : Packet.t -> ip_off:int -> bool
  (** A zero stored checksum counts as valid (optional in IPv4). *)

  val tcp_valid : Packet.t -> ip_off:int -> bool
end

(** Whole-packet constructors for traffic generators and tests. *)
module Build : sig
  val udp :
    ?src_eth:Ethaddr.t ->
    ?dst_eth:Ethaddr.t ->
    src_ip:Ipaddr.t ->
    dst_ip:Ipaddr.t ->
    ?src_port:int ->
    ?dst_port:int ->
    ?payload_len:int ->
    ?ttl:int ->
    unit ->
    Packet.t
  (** A full Ethernet/IP/UDP frame. Defaults produce the paper's 64-byte
      test packet: 14 (Ethernet) + 20 (IP) + 8 (UDP) + 14 (payload) data
      bytes, with the 4-byte CRC left to the simulated device. *)

  val arp_query :
    src_eth:Ethaddr.t -> src_ip:Ipaddr.t -> target_ip:Ipaddr.t -> Packet.t

  val arp_reply :
    src_eth:Ethaddr.t ->
    src_ip:Ipaddr.t ->
    dst_eth:Ethaddr.t ->
    dst_ip:Ipaddr.t ->
    Packet.t

  val icmp_echo :
    src_ip:Ipaddr.t -> dst_ip:Ipaddr.t -> ?payload_len:int -> unit -> Packet.t
  (** An Ethernet/IP/ICMP echo-request frame. *)

  val tcp :
    src_ip:Ipaddr.t ->
    dst_ip:Ipaddr.t ->
    src_port:int ->
    dst_port:int ->
    ?flags:int ->
    unit ->
    Packet.t
  (** An Ethernet/IP/TCP frame with a minimal 20-byte TCP header. *)
end
