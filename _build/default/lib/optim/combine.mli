(** [click-combine] and [click-uncombine]: multiple-router configurations
    (paper §7.2, Fig. 7).

    [combine] builds one configuration representing several routers and
    the links between them: each router's elements are renamed
    ["router/element"], and each specified link replaces the transmitting
    router's [ToDevice] and the receiving router's [PollDevice] with a
    single [RouterLink] element whose configuration records the endpoints.
    The combined configuration can be checked for network-level properties
    or optimized (e.g. ARP elimination on point-to-point links,
    {!Patterns.arp_elimination}).

    [uncombine] extracts one router back out, reinstating [ToDevice] and
    [PollDevice] at the recorded link endpoints. *)

type link = {
  lk_from_router : string;
  lk_from_device : string;
  lk_to_router : string;
  lk_to_device : string;
}

val combine :
  (string * Oclick_graph.Router.t) list ->
  links:link list ->
  (Oclick_graph.Router.t, string) result

val uncombine :
  Oclick_graph.Router.t -> name:string -> (Oclick_graph.Router.t, string) result
