lib/core/ip_router.ml: Buffer List Oclick_graph Oclick_packet Printf String
