module Router = Oclick_graph.Router
module Check = Oclick_graph.Check
module Spec = Oclick_graph.Spec
module Registry = Oclick_runtime.Registry

type specialized = {
  s_class : string;
  s_original : string;
  s_members : string list;
}

(* The code-sharing partition (paper §6.1's four rules), by refinement. *)
let equivalence_classes ?(exclude = []) router =
  match Check.resolve_processing router Registry.spec_table with
  | Error msgs -> Error (String.concat "\n" msgs)
  | Ok resolved ->
      let indices = Router.indices router in
      let max_idx = List.fold_left max 0 indices in
      let ids = Array.make (max_idx + 1) (-1) in
      let intern table next key =
        match Hashtbl.find_opt table key with
        | Some id -> id
        | None ->
            let id = !next in
            incr next;
            Hashtbl.replace table key id;
            id
      in
      (* Rules 1-3 (and exclusions) form the initial partition. *)
      let table = Hashtbl.create 32 and next = ref 0 in
      List.iter
        (fun i ->
          let name = Router.name router i in
          let key =
            if List.mem name exclude then
              (* Excluded elements keep their single generic implementation,
                 so for rule 4 they all "share code" per class. *)
              `Excluded (Router.class_of router i)
            else
              `Sig
                ( Router.class_of router i,
                  Array.to_list resolved.Check.input_kind.(i),
                  Array.to_list resolved.Check.output_kind.(i) )
          in
          ids.(i) <- intern table next key)
        indices;
      (* Rule 4: refine on the classes and ports of packet-transfer peers
         until the partition is stable. Excluded elements are not refined:
         whatever their peers, they run the one generic implementation. *)
      let excluded = Array.make (max_idx + 1) false in
      List.iter
        (fun i -> excluded.(i) <- List.mem (Router.name router i) exclude)
        indices;
      let stable = ref false in
      while not !stable do
        let table = Hashtbl.create 32 and next = ref 0 in
        let new_ids = Array.make (max_idx + 1) (-1) in
        List.iter
          (fun i ->
            if excluded.(i) then new_ids.(i) <- intern table next (ids.(i), [], [])
            else
            let push_out_peers =
              List.filter_map
                (fun (p, j, jp) ->
                  if resolved.Check.output_kind.(i).(p) = Spec.Push then
                    Some (p, ids.(j), jp)
                  else None)
                (Router.outputs_of router i)
            in
            let pull_in_peers =
              List.filter_map
                (fun (p, j, jp) ->
                  if resolved.Check.input_kind.(i).(p) = Spec.Pull then
                    Some (p, ids.(j), jp)
                  else None)
                (Router.inputs_of router i)
            in
            new_ids.(i) <- intern table next (ids.(i), push_out_peers, pull_in_peers))
          indices;
        stable := Array.for_all2 ( = ) ids new_ids;
        Array.blit new_ids 0 ids 0 (max_idx + 1)
      done;
      Ok ids

(* Whether an element performs any outgoing packet transfers (push
   outputs or pull inputs): only those benefit from specialization. *)
let makes_calls router resolved i =
  List.exists
    (fun (p, _, _) -> resolved.Check.output_kind.(i).(p) = Spec.Push)
    (Router.outputs_of router i)
  || List.exists
       (fun (p, _, _) -> resolved.Check.input_kind.(i).(p) = Spec.Pull)
       (Router.inputs_of router i)

let run ?(install = true) ?(exclude = []) source =
  let router = Router.copy source in
  match equivalence_classes ~exclude router with
  | Error e -> Error e
  | Ok ids -> (
      match Check.resolve_processing router Registry.spec_table with
      | Error msgs -> Error (String.concat "\n" msgs)
      | Ok resolved ->
          let indices = Router.indices router in
          (* Group element indices by equivalence class id. *)
          let groups : (int, int list) Hashtbl.t = Hashtbl.create 16 in
          List.iter
            (fun i ->
              let cur =
                Option.value ~default:[] (Hashtbl.find_opt groups ids.(i))
              in
              Hashtbl.replace groups ids.(i) (i :: cur))
            indices;
          let counter : (string, int) Hashtbl.t = Hashtbl.create 16 in
          let specialized = ref [] in
          (* Deterministic order: groups sorted by their first member. *)
          let group_list =
            List.sort
              (fun a b -> Int.compare (List.hd a) (List.hd b))
              (Hashtbl.fold (fun _ m acc -> List.rev m :: acc) groups [])
          in
          List.iter
            (fun members ->
              let rep = List.hd members in
              let name0 = Router.name router rep in
              if
                (not (List.mem name0 exclude))
                && makes_calls router resolved rep
              then begin
                let orig = Router.class_of router rep in
                let n =
                  let c =
                    Option.value ~default:0 (Hashtbl.find_opt counter orig)
                  in
                  Hashtbl.replace counter orig (c + 1);
                  c + 1
                in
                let cls = Printf.sprintf "Devirtualize@@%s@@%d" orig n in
                List.iter (fun i -> Router.set_class router i cls) members;
                specialized :=
                  ( {
                      s_class = cls;
                      s_original = orig;
                      s_members = List.map (Router.name router) members;
                    },
                    rep )
                  :: !specialized
              end)
            group_list;
          let specialized = List.rev !specialized in
          (* Attach generated source. *)
          if specialized <> [] then begin
            let buf = Buffer.create 512 in
            let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
            add "(* Generated by click-devirtualize. Do not edit.\n";
            add
              "   Each class replaces virtual packet-transfer calls with\n";
            add "   direct calls to the concrete downstream class. *)\n\n";
            List.iter
              (fun (s, rep) ->
                add "(* class %s specializes %s; shared by: %s *)\n" s.s_class
                  s.s_original
                  (String.concat ", " s.s_members);
                List.iter
                  (fun (p, j, jp) ->
                    add
                      "(*   output(%d) -> %s.push(%d, p)  [direct call] *)\n"
                      p (Router.class_of router j) jp)
                  (Router.outputs_of router rep);
                add "\n")
              specialized;
            Router.set_archive_member router ~name:"devirtualize.ml"
              ~body:(Buffer.contents buf);
            Router.add_requirement router "devirtualize"
          end;
          (* Register the specialized classes with the runtime. *)
          let errors = ref [] in
          if install then
            List.iter
              (fun (s, _) ->
                match (Registry.find s.s_original, Registry.spec s.s_original)
                with
                | Some ctor, Some spec ->
                    let cls = s.s_class in
                    Registry.register ~replace:true
                      ~spec:{ spec with Spec.s_class = cls } cls
                      (fun name ->
                        let e = ctor name in
                        e#set_code_class cls;
                        e#set_direct_dispatch true;
                        e)
                | _ ->
                    errors :=
                      Printf.sprintf "original class %S not registered"
                        s.s_original
                      :: !errors)
              specialized;
          match !errors with
          | [] -> Ok (router, List.map fst specialized)
          | msgs -> Error (String.concat "\n" msgs))
