(* click-check: verify a router configuration against the element
   specifications; report every error. *)

open Cmdliner

let run input =
  let source = Tool_common.read_input input in
  let router = Tool_common.parse_router ~check:false source in
  match Oclick_graph.Check.check router Oclick_runtime.Registry.spec_table with
  | [] ->
      Printf.printf "%d elements, %d connections: configuration OK\n"
        (Oclick_graph.Router.size router)
        (List.length (Oclick_graph.Router.hookups router))
  | errors ->
      List.iter prerr_endline errors;
      exit 1

let () =
  Tool_common.run_tool "click-check"
    "Check a Click configuration for errors."
    Term.(const run $ Tool_common.input_arg)
