lib/lang/flatten.mli: Ast
