class type t = object
  method device_name : string
  method rx : unit -> Oclick_packet.Packet.t option
  method tx : Oclick_packet.Packet.t -> bool
  method tx_ready : bool
end

class queue_device name ?(tx_capacity = max_int) () =
  object
    val rx_q : Oclick_packet.Packet.t Queue.t = Queue.create ()
    val tx_q : Oclick_packet.Packet.t Queue.t = Queue.create ()
    val mutable sent = 0
    method device_name : string = name
    method rx () = Queue.take_opt rx_q

    method tx p =
      if Queue.length tx_q >= tx_capacity then false
      else begin
        Queue.add p tx_q;
        sent <- sent + 1;
        true
      end

    method tx_ready = Queue.length tx_q < tx_capacity
    method inject p = Queue.add p rx_q
    method collect = Queue.take_opt tx_q
    method tx_count = sent
  end
