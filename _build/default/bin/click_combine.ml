(* click-combine: build one configuration representing several routers
   and the links between them (paper §7.2).

   Usage: click-combine -r NAME=FILE -r NAME=FILE ...
                        -l "A.eth0 -> B.eth1" ... *)

open Cmdliner

let parse_router_spec spec =
  match String.index_opt spec '=' with
  | None -> Tool_common.die "bad router spec %S (want NAME=FILE)" spec
  | Some i ->
      let name = String.sub spec 0 i in
      let file = String.sub spec (i + 1) (String.length spec - i - 1) in
      (name, Tool_common.parse_router (Tool_common.read_input (Some file)))

let parse_link_spec spec =
  let fail () =
    Tool_common.die "bad link spec %S (want \"A.dev -> B.dev\")" spec
  in
  let parse_end s =
    match String.index_opt (String.trim s) '.' with
    | None -> fail ()
    | Some i ->
        let s = String.trim s in
        (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  match Str_split.split_on_substring spec "->" with
  | [ a; b ] ->
      let ra, da = parse_end a and rb, db = parse_end b in
      {
        Oclick_optim.Combine.lk_from_router = ra;
        lk_from_device = da;
        lk_to_router = rb;
        lk_to_device = db;
      }
  | _ -> fail ()

let run router_specs link_specs =
  let routers = List.map parse_router_spec router_specs in
  let links = List.map parse_link_spec link_specs in
  if routers = [] then Tool_common.die "no routers given (-r NAME=FILE)";
  match Oclick_optim.Combine.combine routers ~links with
  | Error e -> Tool_common.die "%s" e
  | Ok combined -> Tool_common.output_router combined

let routers_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "r"; "router" ] ~docv:"NAME=FILE" ~doc:"A router to combine.")

let links_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "l"; "link" ] ~docv:"LINK"
        ~doc:"A link, e.g. \"A.eth0 -> B.eth1\".")

let () =
  Tool_common.run_tool "click-combine"
    "Combine several router configurations into one."
    Term.(const run $ routers_arg $ links_arg)
