(* Alignment support and the multi-router RouterLink (paper §7). *)

open Prelude

(* Align(MODULUS, OFFSET): copies packet data so its offset within the
   machine word satisfies the constraint. The copy is exactly the cost
   click-align works to avoid inserting unnecessarily (§7.1). *)
class align name =
  object (self)
    inherit E.base name
    val mutable modulus = 4
    val mutable offset = 0
    val mutable copies = 0
    method class_name = "Align"

    method! configure config =
      match Args.split config with
      | [ m; o ] -> (
          match (Args.parse_int m, Args.parse_int o) with
          | Some m, Some o when m > 0 && o >= 0 && o < m ->
              modulus <- m;
              offset <- o;
              Ok ()
          | _ -> Error "Align expects MODULUS, OFFSET with 0 <= OFFSET < MODULUS")
      | _ -> Error "Align expects MODULUS, OFFSET"

    method private realign p =
      if Packet.data_offset p mod modulus <> offset then begin
        Packet.realign p ~modulus ~offset;
        copies <- copies + 1;
        self#charge (Hooks.W_copy (Packet.length p))
      end

    method! push _ p =
      self#realign p;
      self#output 0 p

    method! pull _ =
      match self#input_pull 0 with
      | Some p ->
          self#realign p;
          Some p
      | None -> None

    method! stats = [ ("copies", copies) ]
  end

(* AlignmentInfo: a pure information element; click-align appends it so
   elements can learn what alignment to expect. It has no ports and the
   runtime accepts any configuration. *)
class alignment_info name =
  object
    inherit E.base name
    method class_name = "AlignmentInfo"
    method! port_count = "0/0"
    method! configure _ = Ok ()
  end

(* RouterLink: the inter-router connection marker emitted by
   click-combine (paper §7.2). At run time it is a transparent wire. *)
class router_link name =
  object (self)
    inherit E.base name
    method class_name = "RouterLink"
    method! configure _ = Ok ()
    method! push _ p = self#output 0 p
    method! pull _ = self#input_pull 0
  end

let register () =
  def "Align" (fun n -> (new align n :> E.t));
  def "AlignmentInfo" ~ports:"0/0" (fun n -> (new alignment_info n :> E.t));
  def "RouterLink" (fun n -> (new router_link n :> E.t))
