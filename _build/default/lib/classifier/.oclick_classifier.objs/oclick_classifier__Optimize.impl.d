lib/classifier/optimize.ml: Array Hashtbl List Option Tree
