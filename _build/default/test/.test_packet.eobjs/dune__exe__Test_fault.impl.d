test/test_fault.ml: Alcotest Array Fun Hashtbl List Oclick Oclick_elements Oclick_fault Oclick_graph Oclick_hw Oclick_packet Oclick_runtime Option Printf Result String
