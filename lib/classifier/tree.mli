(** Classification decision trees.

    This is the structure Click's [Classifier], [IPFilter], and
    [IPClassifier] compile their textual specifications into (paper §3, §4,
    Fig. 3a): a DAG of nodes, each comparing a masked 32-bit big-endian
    word of packet data against a constant and branching. Leaves name an
    output port or drop the packet.

    Words are addressed by byte offset into the packet data; reads past the
    end of the packet see zero bytes, so short packets take whatever branch
    the zero data selects — a deterministic, documented simplification of
    Click's length pre-check. *)

type target = Node of int | Leaf of int
(** [Leaf k]: emit on output [k]; [Leaf drop_output] discards. *)

val drop : int
(** The pseudo-output for dropped packets, [-1]. *)

type node = { offset : int; mask : int; value : int; yes : target; no : target }

type t = {
  nodes : node array;  (** node 0 is the root (when the array is non-empty) *)
  root : target;  (** entry point; a bare [Leaf] when the tree is trivial *)
  noutputs : int;
}

val leaf_tree : int -> int -> t
(** [leaf_tree output noutputs]: classify everything to [output]. *)

val safe_length : t -> int
(** Largest [offset + 4] over all nodes: packets at least this long are
    classified without implicit zero padding. *)

val node_count : t -> int
val depth : t -> int
(** Longest root-to-leaf path (0 for a trivial tree). *)

(** {2 Classification} *)

val classify_read : t -> read:(int -> int) -> int
(** Walk the tree. [read off] must return the big-endian 32-bit word at
    byte offset [off] (zero-padded). Returns the output port, or {!drop}. *)

val classify_read_count : t -> read:(int -> int) -> int * int
(** Like {!classify_read} but also returns the number of nodes visited. *)

val packet_read : Oclick_packet.Packet.t -> int -> int
(** Zero-padded big-endian word read for {!classify_read}. *)

val classify : t -> Oclick_packet.Packet.t -> int
val classify_count : t -> Oclick_packet.Packet.t -> int * int

val classify_packed : t -> Oclick_packet.Packet.t -> int
(** {!classify_count} with the result packed into one immediate int —
    decode with {!packed_output}/{!packed_visited}. Performs no
    allocation, for per-packet datapaths. The visited count saturates
    at 2{^20}-1. *)

val packed_output : int -> int
val packed_visited : int -> int

(** {2 The dump format}

    [click-fastclassifier] extracts decision trees by running Click on a
    harness configuration that prints each classifier's tree in
    human-readable form, then parsing that output (paper §4). *)

val to_string : t -> string
(** One line per node: ["N: off M mask V value yes Y no Z"]; targets are
    ["[k]"] for leaves ([[drop]] for the drop leaf) and plain integers for
    nodes. *)

val of_string : string -> (t, string) result
(** Parses {!to_string} output. *)

val equal : t -> t -> bool
(** Structural equality of reachable behaviour: node arrays and roots are
    compared after renumbering both trees in preorder. *)

val renumber : t -> t
(** Garbage-collects unreachable nodes and renumbers the rest in preorder
    from the root. *)
