class type t = object
  method device_name : string
  method rx : unit -> Oclick_packet.Packet.t option
  method rx_batch : Oclick_packet.Packet.t array -> int
  method tx : Oclick_packet.Packet.t -> bool
  method tx_ready : bool
  method tx_space : int
end

class queue_device name ?(tx_capacity = max_int) () =
  object
    val rx_q : Oclick_packet.Packet.t Fifo.t = Fifo.create ()
    val tx_q : Oclick_packet.Packet.t Fifo.t = Fifo.create ()
    val mutable sent = 0
    method device_name : string = name
    method rx () = Fifo.take_opt rx_q

    method rx_batch (dst : Oclick_packet.Packet.t array) =
      let want = min (Array.length dst) (Fifo.length rx_q) in
      for i = 0 to want - 1 do
        dst.(i) <- Fifo.take rx_q
      done;
      want

    method tx p =
      if Fifo.length tx_q >= tx_capacity then false
      else begin
        Fifo.add tx_q ~cap:tx_capacity p;
        sent <- sent + 1;
        true
      end

    method tx_ready = Fifo.length tx_q < tx_capacity
    method tx_space = tx_capacity - Fifo.length tx_q
    method inject p = Fifo.add rx_q ~cap:max_int p
    method collect = Fifo.take_opt tx_q

    method collect_into (dst : Oclick_packet.Packet.t array) =
      let want = min (Array.length dst) (Fifo.length tx_q) in
      for i = 0 to want - 1 do
        dst.(i) <- Fifo.take tx_q
      done;
      want

    method tx_count = sent
  end
