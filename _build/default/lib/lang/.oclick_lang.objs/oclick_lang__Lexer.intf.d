lib/lang/lexer.mli:
