lib/hw/platform.mli:
