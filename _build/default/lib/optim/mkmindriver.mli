(** [click-mkmindriver]: computes the minimal element set a configuration
    needs and generates a driver source that registers only those classes
    (the analogue of building a minimal Click kernel module). *)

val required_classes : Oclick_graph.Router.t -> string list
(** Every class the configuration instantiates, sorted, including classes
    the optimizers may introduce for it (generated classes resolve to
    their runtime prerequisites). *)

val driver_source : Oclick_graph.Router.t -> string
(** OCaml source for a minimal driver: registration calls for exactly the
    element modules the configuration needs. *)
