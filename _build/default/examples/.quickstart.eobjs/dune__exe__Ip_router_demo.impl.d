examples/ip_router_demo.ml: List Oclick Oclick_elements Oclick_graph Oclick_hw Printf String
