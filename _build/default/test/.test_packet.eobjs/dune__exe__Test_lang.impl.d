test/test_lang.ml: Alcotest Filename List Oclick Oclick_lang Option Printf QCheck QCheck_alcotest Result String Sys
