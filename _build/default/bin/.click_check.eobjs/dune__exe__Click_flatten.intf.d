bin/click_flatten.mli:
