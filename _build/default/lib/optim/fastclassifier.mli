(** [click-fastclassifier]: compiles classifier elements into specialized
    element classes (paper §4).

    For each [Classifier], [IPFilter], or [IPClassifier] in a configuration
    the tool: combines adjacent [Classifier]s; extracts each element's
    decision tree by building it in a harness, dumping it in the
    human-readable format, and re-parsing the dump (the paper's
    "run Click on the harness" step); optimizes the tree; generates a
    specialized element class per distinct tree (elements with identical
    trees share one class, as in the paper); rewrites the configuration to
    use the generated classes; and attaches the generated OCaml source to
    the output archive. With [~install] (the default) the generated classes
    are also registered with the runtime so the configuration runs —
    our stand-in for Click compiling and dynamically linking the archive. *)

type generated = {
  g_class : string;  (** e.g. ["FastClassifier@@ip_cl"] *)
  g_tree : Oclick_classifier.Tree.t;
  g_source : string;  (** generated OCaml source *)
}

val run :
  ?install:bool ->
  Oclick_graph.Router.t ->
  (Oclick_graph.Router.t * generated list, string) result
(** The input graph is not modified. *)
