lib/elements/oclick_elements.ml: Arp Basic Classify Combos Devices Extras Ip Misc Rewriter Routing Trace_io
