(** Configuration checking and push/pull resolution (the [click-check]
    analysis).

    Given the external specification table, verifies that a router graph is
    well-formed and resolves every agnostic port to push or pull. The same
    resolution drives [click-devirtualize], which must compile different
    code for push and pull ports (paper §5.3). *)

type resolved = {
  input_kind : Spec.port_kind array array;
      (** [input_kind.(idx).(port)], with [Agnostic] already resolved *)
  output_kind : Spec.port_kind array array;
}

val resolve_processing :
  Router.t -> Spec.table -> (resolved, string list) result
(** Fixpoint resolution. Agnostic ports adopt the processing of their peers;
    within one element, all agnostic ports resolve alike; chains that remain
    agnostic default to push. Unknown classes are treated as fully agnostic
    ["-/-"] elements here (check reports them separately). *)

val check : Router.t -> Spec.table -> string list
(** All configuration errors: unknown classes, port counts outside the
    class's declared range, unconnected ports, push outputs or pull inputs
    used more than once, and push/pull conflicts. Empty means valid. *)
