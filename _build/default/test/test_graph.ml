(* Tests for the router graph library: graph operations, specification
   parsing, processing resolution, configuration checking. *)

module Router = Oclick_graph.Router
module Spec = Oclick_graph.Spec
module Check = Oclick_graph.Check

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let graph_of src =
  match Router.parse_string src with
  | Ok g -> g
  | Error e -> Alcotest.failf "parse_string: %s" e

(* A small test specification table. *)
let table : Spec.table = function
  | "Src" -> Some (Spec.make ~ports:"0/1" ~processing:"h/h" "Src")
  | "Sink" -> Some (Spec.make ~ports:"1/0" ~processing:"h/h" "Sink")
  | "PullSink" -> Some (Spec.make ~ports:"1/0" ~processing:"l/l" "PullSink")
  | "Thru" -> Some (Spec.make "Thru")
  | "Q" -> Some (Spec.make ~processing:"h/l" "Q")
  | "Split" -> Some (Spec.make ~ports:"1/2" ~processing:"h/h" "Split")
  | _ -> None

(* --- spec parsing -------------------------------------------------------- *)

let test_port_counts () =
  let p s = Spec.parse_port_counts s in
  (match p "1/2" with
  | Some (i, o) ->
      check_bool "exact" true (Spec.in_range i 1 && not (Spec.in_range i 2));
      check_bool "out" true (Spec.in_range o 2)
  | None -> Alcotest.fail "1/2");
  (match p "1-/2-3" with
  | Some (i, o) ->
      check_bool "open upper" true (Spec.in_range i 99);
      check_bool "below lo" false (Spec.in_range i 0);
      check_bool "range" true (Spec.in_range o 2 && Spec.in_range o 3);
      check_bool "above range" false (Spec.in_range o 4)
  | None -> Alcotest.fail "1-/2-3");
  (match p "-/-" with
  | Some (i, _) -> check_bool "any" true (Spec.in_range i 0)
  | None -> Alcotest.fail "-/-");
  check_bool "garbage" true (p "x/y" = None);
  check_bool "missing slash" true (p "12" = None)

let test_processing_codes () =
  check_bool "valid" true (Spec.parse_processing "a/ah" <> None);
  check_bool "invalid char" true (Spec.parse_processing "a/qx" = None);
  check_bool "empty half" true (Spec.parse_processing "/h" = None);
  let s = Spec.make ~processing:"a/ah" "X" in
  check_bool "input agnostic" true (Spec.input_processing s 0 = Spec.Agnostic);
  check_bool "out0 agnostic" true (Spec.output_processing s 0 = Spec.Agnostic);
  check_bool "out1 push" true (Spec.output_processing s 1 = Spec.Push);
  check_bool "out9 repeats last" true (Spec.output_processing s 9 = Spec.Push)

let test_flow_codes () =
  let s = Spec.make ~flow:"xy/x" "ARPQuerier" in
  check_bool "0 -> 0" true (Spec.flows_to s ~input:0 ~output:0);
  check_bool "1 -/-> 0" false (Spec.flows_to s ~input:1 ~output:0);
  let all = Spec.make "X" in
  check_bool "x/x all" true (Spec.flows_to all ~input:3 ~output:7)

(* --- graph operations ------------------------------------------------------ *)

let test_graph_basics () =
  let g = graph_of "a :: Src; b :: Thru; c :: Sink; a -> b -> c;" in
  check "size" 3 (Router.size g);
  let a = Option.get (Router.find g "a") in
  check_str "class" "Src" (Router.class_of g a);
  check "outputs of a" 1 (List.length (Router.outputs_of g a));
  check "inputs of a" 0 (List.length (Router.inputs_of g a));
  let b = Option.get (Router.find g "b") in
  check "output ports" 1 (Router.output_port_count g b);
  check "input ports" 1 (Router.input_port_count g b)

let test_add_remove () =
  let g = graph_of "a :: Src; b :: Sink; a -> b;" in
  let c = Router.add_element g ~name:"mid" ~cls:"Thru" ~config:"" in
  let a = Option.get (Router.find g "a") and b = Option.get (Router.find g "b") in
  Router.remove_hookup g
    { Router.from_idx = a; from_port = 0; to_idx = b; to_port = 0 };
  Router.add_hookup g { Router.from_idx = a; from_port = 0; to_idx = c; to_port = 0 };
  Router.add_hookup g { Router.from_idx = c; from_port = 0; to_idx = b; to_port = 0 };
  check "size" 3 (Router.size g);
  check "hookups" 2 (List.length (Router.hookups g));
  Router.remove_element g c;
  check "size after remove" 2 (Router.size g);
  check "hookups after remove" 0 (List.length (Router.hookups g))

let test_fresh_name () =
  let g = graph_of "a :: Src;" in
  check_str "free name" "b" (Router.fresh_name g "b");
  check_str "taken name" "a@1" (Router.fresh_name g "a");
  ignore (Router.add_element g ~name:"a@1" ~cls:"Thru" ~config:"");
  check_str "next free" "a@2" (Router.fresh_name g "a")

let test_duplicate_name_rejected () =
  let g = graph_of "a :: Src;" in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Router.add_element: name \"a\" taken") (fun () ->
      ignore (Router.add_element g ~name:"a" ~cls:"Thru" ~config:""))

let test_copy_independent () =
  let g = graph_of "a :: Src; b :: Sink; a -> b;" in
  let g2 = Router.copy g in
  Router.remove_element g (Option.get (Router.find g "b"));
  check "copy unaffected" 2 (Router.size g2);
  check "original shrunk" 1 (Router.size g)

let test_to_string_archive () =
  let g = graph_of "a :: Src; b :: Sink; a -> b;" in
  Router.set_archive_member g ~name:"gen.ml" ~body:"(* x *)";
  let s = Router.to_string g in
  check_bool "archive output" true (Oclick_lang.Archive.is_archive s);
  (* and it parses back, preserving the member *)
  match Router.parse_string s with
  | Ok g2 ->
      check_bool "member preserved" true
        (Oclick_lang.Archive.find (Router.archive g2) "gen.ml" = Some "(* x *)")
  | Error e -> Alcotest.failf "reparse: %s" e

let test_of_ast_rejects_compound () =
  let ast = Oclick_lang.Parser.parse_exn "elementclass F { input->output; } f :: F; Idle -> f -> Discard;" in
  check_bool "rejected" true (Result.is_error (Router.of_ast ast))

let test_requirements_preserved () =
  let g = graph_of "require(magic); a :: Src;" in
  check_bool "requirement" true (Router.requirements g = [ "magic" ])

(* --- processing resolution --------------------------------------------------- *)

let test_resolution_simple () =
  let g = graph_of "a :: Src; t :: Thru; q :: Q; s :: PullSink; a -> t -> q -> s;" in
  match Check.resolve_processing g table with
  | Error e -> Alcotest.failf "resolve: %s" (String.concat ";" e)
  | Ok r ->
      let t = Option.get (Router.find g "t") in
      check_bool "thru input became push" true
        (r.Check.input_kind.(t).(0) = Spec.Push);
      check_bool "thru output became push" true
        (r.Check.output_kind.(t).(0) = Spec.Push)

let test_resolution_conflict () =
  (* Src (push) feeding PullSink directly is a processing conflict. *)
  let g = graph_of "a :: Src; s :: PullSink; a -> s;" in
  check_bool "conflict detected" true
    (Result.is_error (Check.resolve_processing g table))

let test_resolution_agnostic_chain_defaults_push () =
  let g = graph_of "a :: Thru; b :: Thru; a -> b; b -> a;" in
  match Check.resolve_processing g table with
  | Ok r ->
      let a = Option.get (Router.find g "a") in
      check_bool "defaults to push" true (r.Check.input_kind.(a).(0) = Spec.Push)
  | Error e -> Alcotest.failf "resolve: %s" (String.concat ";" e)

(* --- checking ------------------------------------------------------------------ *)

let test_check_ok () =
  let g = graph_of "a :: Src; q :: Q; s :: PullSink; a -> q -> s;" in
  Alcotest.(check (list string)) "no errors" [] (Check.check g table)

let test_check_unknown_class () =
  let g = graph_of "a :: Src; z :: Zorp; a -> z;" in
  check_bool "unknown class" true
    (List.exists
       (fun e ->
         let has sub =
           let rec find i =
             i + String.length sub <= String.length e
             && (String.sub e i (String.length sub) = sub || find (i + 1))
           in
           find 0
         in
         has "Zorp")
       (Check.check g table))

let test_check_port_count () =
  (* Split has exactly 2 outputs; using 3 is an error. *)
  let g =
    graph_of
      "a :: Src; sp :: Split; s1 :: Sink; s2 :: Sink; s3 :: Sink; a -> sp; \
       sp [0] -> s1; sp [1] -> s2; sp [2] -> s3;"
  in
  check_bool "port count error" true (Check.check g table <> [])

let test_check_unconnected_gap () =
  let g =
    graph_of "a :: Src; sp :: Split; s :: Sink; a -> sp; sp [1] -> s;"
  in
  (* output 0 of sp never connected: a gap *)
  check_bool "gap detected" true
    (List.exists
       (fun e -> String.length e > 0 && e.[0] = 's')
       (Check.check g table))

let test_check_push_double_connection () =
  let g = graph_of "a :: Src; s1 :: Sink; s2 :: Sink; a -> s1; a -> s2;" in
  check_bool "double push output" true
    (List.exists
       (fun e ->
         let rec find i =
           i + 4 <= String.length e
           && (String.sub e i 4 = "push" || find (i + 1))
         in
         find 0)
       (Check.check g table))

let test_check_registry_ip_router () =
  (* The generated Figure 1 router is valid against the real registry. *)
  Oclick_elements.register_all ();
  let g =
    graph_of (Oclick.Ip_router.config (Oclick.Ip_router.standard_interfaces 4))
  in
  Alcotest.(check (list string))
    "IP router checks clean" []
    (Check.check g Oclick_runtime.Registry.spec_table)

let () =
  Alcotest.run "graph"
    [
      ( "spec",
        [
          Alcotest.test_case "port counts" `Quick test_port_counts;
          Alcotest.test_case "processing codes" `Quick test_processing_codes;
          Alcotest.test_case "flow codes" `Quick test_flow_codes;
        ] );
      ( "router",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "fresh names" `Quick test_fresh_name;
          Alcotest.test_case "duplicate rejected" `Quick
            test_duplicate_name_rejected;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "archive round trip" `Quick test_to_string_archive;
          Alcotest.test_case "compound rejected" `Quick
            test_of_ast_rejects_compound;
          Alcotest.test_case "requirements" `Quick test_requirements_preserved;
        ] );
      ( "resolution",
        [
          Alcotest.test_case "simple" `Quick test_resolution_simple;
          Alcotest.test_case "conflict" `Quick test_resolution_conflict;
          Alcotest.test_case "agnostic default" `Quick
            test_resolution_agnostic_chain_defaults_push;
        ] );
      ( "check",
        [
          Alcotest.test_case "ok" `Quick test_check_ok;
          Alcotest.test_case "unknown class" `Quick test_check_unknown_class;
          Alcotest.test_case "port count" `Quick test_check_port_count;
          Alcotest.test_case "unconnected gap" `Quick
            test_check_unconnected_gap;
          Alcotest.test_case "double push" `Quick
            test_check_push_double_connection;
          Alcotest.test_case "IP router vs registry" `Quick
            test_check_registry_ip_router;
        ] );
    ]
