(** The raw [Classifier] pattern language.

    Each configuration argument describes one output port as a
    space-separated list of clauses, each matching bytes at a fixed offset:

    - ["12/0800"] — bytes 12.. must equal [08 00];
    - ["33/02%12"] — byte 33 masked with [0x12] must equal [0x02];
    - ["20/45?8"] — ['?'] nibbles are wildcards;
    - a clause prefixed with ['!'] is negated;
    - the argument ["-"] matches every packet. *)

val parse_pattern : string -> (Bexpr.t, string) result
(** One argument's pattern. *)

val parse_config : string -> (Bexpr.rule list, string) result
(** The whole [Classifier] configuration string: argument [i] classifies to
    output [i]. *)

val tree_of_config : string -> (Tree.t, string) result
(** Parse and lower; the tree has one output per argument. *)
