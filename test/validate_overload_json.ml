(* Schema validation for the overload benchmark's JSON, used by the
   @overload-smoke alias: reads BENCH_overload.json (path argument, or
   stdin) and checks the shape the plotting/CI side depends on — every
   curve identifies its workload and domain count, carries one point per
   offered load, every point certifies conservation, and every curve's
   goodput plateau held (>= 0.7 of its best goodput at the highest
   load). The testbed is deterministic, so the plateau check cannot
   flake. Exits 1 with a one-line diagnostic on the first violation. *)

module Json = Oclick_obs.Json

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline msg;
      exit 1)
    fmt

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  Buffer.contents buf

let number label = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> die "%s: not a number" label

let get label obj field =
  match Json.member field obj with
  | Some v -> v
  | None -> die "%s: missing %S" label field

let check_point ~label ~expected_load v =
  let offered = int_of_float (number label (get label v "offered_pps")) in
  if offered <> expected_load then
    die "%s: offered_pps %d does not match declared load %d" label offered
      expected_load;
  let goodput = number label (get label v "goodput_pps") in
  if goodput < 0.0 then die "%s: negative goodput" label;
  let drops = number label (get label v "drops") in
  if drops < 0.0 then die "%s: negative drops" label;
  match get label v "conserved" with
  | Json.Bool true -> ()
  | _ -> die "%s: conservation not certified" label

let check_curve ~loads v =
  let label =
    match (Json.member "workload" v, Json.member "domains" v) with
    | Some (Json.String w), Some (Json.Int d) -> Printf.sprintf "%s/%d" w d
    | _ -> die "curve: missing workload/domains"
  in
  let domains =
    match get label v "domains" with
    | Json.Int d when d >= 1 -> d
    | _ -> die "%s: bad domains" label
  in
  ignore domains;
  let plateau = number label (get label v "plateau") in
  if plateau < 0.0 || plateau > 1.0 +. 1e-9 then
    die "%s: plateau %.3f outside [0,1]" label plateau;
  if plateau < 0.7 then
    die "%s: goodput collapsed under overload (plateau %.2f < 0.70)" label
      plateau;
  match get label v "points" with
  | Json.List points ->
      if List.length points <> List.length loads then
        die "%s: %d points for %d declared loads" label (List.length points)
          (List.length loads);
      List.iter2
        (fun load p -> check_point ~label ~expected_load:load p)
        loads points
  | _ -> die "%s: points is not a list" label

let () =
  let input =
    if Array.length Sys.argv > 1 then (
      let ic = open_in Sys.argv.(1) in
      let s = read_all ic in
      close_in ic;
      s)
    else read_all stdin
  in
  let doc =
    match Json.of_string input with
    | Ok v -> v
    | Error e -> die "not valid JSON: %s" e
  in
  (match Json.member "section" doc with
  | Some (Json.String "overload") -> ()
  | _ -> die "missing section=\"overload\"");
  let loads =
    match get "doc" doc "loads" with
    | Json.List l ->
        List.map
          (function
            | Json.Int i when i > 0 -> i
            | _ -> die "loads: not a positive integer")
          l
    | _ -> die "loads is not a list"
  in
  if loads = [] then die "loads is empty";
  match get "doc" doc "curves" with
  | Json.List [] -> die "curves is empty"
  | Json.List curves -> (
      List.iter (check_curve ~loads) curves;
      (* The resilience claim needs both the adversarial workloads and
         the multi-domain configuration present. *)
      let has w d =
        List.exists
          (fun c ->
            Json.member "workload" c = Some (Json.String w)
            && Json.member "domains" c = Some (Json.Int d))
          curves
      in
      match
        List.find_opt
          (fun (w, d) -> not (has w d))
          [
            ("uniform", 1); ("uniform", 4); ("scan", 1); ("scan", 4);
            ("arp-storm", 1); ("arp-storm", 4); ("burst", 1); ("burst", 4);
          ]
      with
      | Some (w, d) -> die "missing curve %s at %d domains" w d
      | None -> print_endline "ok")
  | _ -> die "curves is not a list"
