(* The paper's headline scenario: the standards-compliant IP router of
   Figure 1, optimized by the full tool chain, forwarding packets on the
   simulated testbed.

   Run with:  dune exec examples/ip_router_demo.exe *)

module Router = Oclick_graph.Router

let () =
  Oclick_elements.register_all ();
  let interfaces = Oclick.Ip_router.standard_interfaces 8 in
  let config = Oclick.Ip_router.config interfaces in
  let base = Oclick.Ip_router.graph config in
  Printf.printf "Figure 1 IP router: %d elements, %d connections\n"
    (Router.size base)
    (List.length (Router.hookups base));
  (* Apply the tool chain of the paper's "All" configuration:
     click-xform, then click-fastclassifier, then click-devirtualize. *)
  let optimized = Oclick.Pipeline.optimize Oclick.Pipeline.All base in
  Printf.printf "after xform + fastclassifier + devirtualize: %d elements\n"
    (Router.size optimized);
  let classes g =
    List.sort_uniq String.compare
      (List.map (Router.class_of g) (Router.indices g))
  in
  Printf.printf "specialized classes now in use:\n";
  List.iter
    (fun c -> if String.contains c '@' then Printf.printf "  %s\n" c)
    (classes optimized);
  (* Run both on the simulated 700 MHz / Tulip testbed. *)
  let platform = Oclick_hw.Platform.p0 in
  let measure name graph =
    match
      Oclick_hw.Testbed.run ~platform ~graph ~input_pps:300_000 ()
    with
    | Error e -> failwith e
    | Ok r ->
        Printf.printf
          "%-9s: offered 300k pps -> forwarded %.0f pps; CPU %4.0f ns/packet \
           (%.0f receive + %.0f forward + %.0f transmit)\n"
          name r.Oclick_hw.Testbed.r_forwarded_pps r.r_total_ns r.r_receive_ns
          r.r_forward_ns r.r_transmit_ns
  in
  measure "Base" base;
  measure "All" optimized;
  print_endline "ip_router_demo OK"
