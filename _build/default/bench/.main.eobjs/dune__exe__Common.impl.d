bench/common.ml: List Oclick Oclick_elements Oclick_graph Oclick_hw Oclick_optim Oclick_packet Printf String
