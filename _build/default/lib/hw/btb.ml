type t = {
  entries : (string * int * bool, int) Hashtbl.t;
  mutable lookups : int;
  mutable mispredictions : int;
}

let create () =
  { entries = Hashtbl.create 64; lookups = 0; mispredictions = 0 }

let access t ~site ~target =
  t.lookups <- t.lookups + 1;
  let predicted =
    match Hashtbl.find_opt t.entries site with
    | Some last -> last = target
    | None -> false
  in
  if not predicted then begin
    t.mispredictions <- t.mispredictions + 1;
    Hashtbl.replace t.entries site target
  end;
  predicted

let lookups t = t.lookups
let mispredictions t = t.mispredictions

let reset_counters t =
  t.lookups <- 0;
  t.mispredictions <- 0
