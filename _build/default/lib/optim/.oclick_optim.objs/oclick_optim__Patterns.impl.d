lib/optim/patterns.ml: Printf Xform
