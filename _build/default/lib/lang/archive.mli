(** Configuration archives (paper §5.2).

    Several tools attach generated source code to a configuration; an
    archive bundles the configuration and those extra files into a single
    text. The format is line-oriented: a magic first line, then for each
    member a header line ["--- file:NAME bytes:N"] followed by exactly N
    bytes of content and a newline. *)

type member = { m_name : string; m_body : string }
type t = member list

val magic : string
val is_archive : string -> bool
val parse : string -> (t, string) result
val parse_exn : string -> t
val to_string : t -> string
val find : t -> string -> string option
val add : t -> name:string -> body:string -> t
(** Adds or replaces a member. *)

val of_config : string -> t
(** An archive with a single ["config"] member. *)

val config : t -> string
(** The ["config"] member, or [""] if absent. *)

val with_config : t -> string -> t
