examples/nat_gateway.mli:
