lib/classifier/pattern.ml: Bexpr Bytes Char List Oclick_lang Printf String
