let fold16 sum =
  let s = (sum land 0xffff) + (sum lsr 16) in
  (s land 0xffff) + (s lsr 16)

let ones_complement_sum buf ~pos ~len =
  let sum = ref 0 in
  let i = ref pos in
  let stop = pos + len in
  while !i + 1 < stop do
    sum := !sum + (Char.code (Bytes.get buf !i) lsl 8)
           + Char.code (Bytes.get buf (!i + 1));
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get buf !i) lsl 8);
  fold16 !sum

let checksum buf ~pos ~len =
  lnot (ones_complement_sum buf ~pos ~len) land 0xffff

let combine a b = fold16 (a + b)
let finish sum = lnot sum land 0xffff

let ip_header_valid buf ~pos ~ihl =
  ihl >= 5 && checksum buf ~pos ~len:(ihl * 4) = 0
