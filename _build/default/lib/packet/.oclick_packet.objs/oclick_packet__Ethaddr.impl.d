lib/packet/ethaddr.ml: Buffer Char Format List Printf String
