// A standards-compliant IP router (paper Figure 1), 2 interfaces.
rt :: LookupIPRoute(10.0.0.1/32 0, 10.0.1.1/32 0, 10.0.0.0/24 1, 10.0.1.0/24 2);
rt [0] -> host :: Discard;  // packets for the router itself

// interface 0: eth0 (10.0.0.1, 00:00:c0:00:00:01)
pd0 :: PollDevice(eth0);
out0 :: Queue(200);
td0 :: ToDevice(eth0);
c0 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
ar0 :: ARPResponder(10.0.0.1 00:00:c0:00:00:01);
aq0 :: ARPQuerier(10.0.0.1, 00:00:c0:00:00:01);
pd0 -> c0;
c0 [0] -> ar0 -> out0;
c0 [1] -> [1] aq0;
c0 [2] -> Paint(1) -> Strip(14) -> CheckIPHeader() -> GetIPAddress(16) -> rt;
c0 [3] -> Discard;
rt [1] -> DropBroadcasts -> cp0 :: CheckPaint(1) -> gio0 :: IPGWOptions(10.0.0.1) -> FixIPSrc(10.0.0.1) -> dt0 :: DecIPTTL -> fr0 :: IPFragmenter(1500) -> [0] aq0;
aq0 -> out0 -> td0;
cp0 [1] -> ICMPError(10.0.0.1, redirect, host) -> rt;
gio0 [1] -> ICMPError(10.0.0.1, parameterproblem) -> rt;
dt0 [1] -> ICMPError(10.0.0.1, timeexceeded) -> rt;
fr0 [1] -> ICMPError(10.0.0.1, unreachable, needfrag) -> rt;

// interface 1: eth1 (10.0.1.1, 00:00:c0:00:01:01)
pd1 :: PollDevice(eth1);
out1 :: Queue(200);
td1 :: ToDevice(eth1);
c1 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
ar1 :: ARPResponder(10.0.1.1 00:00:c0:00:01:01);
aq1 :: ARPQuerier(10.0.1.1, 00:00:c0:00:01:01);
pd1 -> c1;
c1 [0] -> ar1 -> out1;
c1 [1] -> [1] aq1;
c1 [2] -> Paint(2) -> Strip(14) -> CheckIPHeader() -> GetIPAddress(16) -> rt;
c1 [3] -> Discard;
rt [2] -> DropBroadcasts -> cp1 :: CheckPaint(2) -> gio1 :: IPGWOptions(10.0.1.1) -> FixIPSrc(10.0.1.1) -> dt1 :: DecIPTTL -> fr1 :: IPFragmenter(1500) -> [0] aq1;
aq1 -> out1 -> td1;
cp1 [1] -> ICMPError(10.0.1.1, redirect, host) -> rt;
gio1 [1] -> ICMPError(10.0.1.1, parameterproblem) -> rt;
dt1 [1] -> ICMPError(10.0.1.1, timeexceeded) -> rt;
fr1 [1] -> ICMPError(10.0.1.1, unreachable, needfrag) -> rt;

