module Router = Oclick_graph.Router
module Check = Oclick_graph.Check
module Spec = Oclick_graph.Spec
module Registry = Oclick_runtime.Registry

type owner = Unowned | One of int | Shared

type cut = {
  cut_queue : int;
  cut_queue_name : string;
  cut_from_shard : int;
  cut_to_shard : int;
  cut_inserted : bool;
}

type t = {
  pt_domains : int;
  pt_graph : Router.t;
  pt_shard_of : int array;
  pt_shards : int list array;
  pt_cuts : cut list;
  pt_inserted : (int * int) list;
}

(* Element classes whose tasks originate push traffic. Flooding forward
   from these along push edges tells us which parts of the graph are
   private to one source (can run on that source's domain) and which are
   shared fabric (reached from several sources, must be one region). *)
let push_source_classes =
  [ "PollDevice"; "FromDevice"; "InfiniteSource"; "UDPSource"; "FromTrace";
    "Unqueue" ]

(* --- union-find ---------------------------------------------------------- *)

let uf_create n = Array.init n (fun i -> i)

let rec uf_find uf i = if uf.(i) = i then i else uf_find uf uf.(i)

let uf_union uf a b =
  let ra = uf_find uf a and rb = uf_find uf b in
  (* Deterministic: the smaller index becomes the root. *)
  if ra < rb then uf.(rb) <- ra else if rb < ra then uf.(ra) <- rb

(* --- graph helpers ------------------------------------------------------- *)

let is_queue g i = Router.class_of g i = "Queue"

(* Successors along push (or push-resolved agnostic) edges, per element. *)
let push_succs g (resolved : Check.resolved) =
  let n = Router.size g in
  let succs = Array.make n [] in
  List.iter
    (fun (h : Router.hookup) ->
      match resolved.Check.output_kind.(h.from_idx).(h.from_port) with
      | Spec.Push | Spec.Agnostic ->
          succs.(h.from_idx) <- h.to_idx :: succs.(h.from_idx)
      | Spec.Pull -> ())
    (Router.hookups g);
  Array.map List.rev succs

(* Producers pushing into each Queue (sources of edges into it). *)
let queue_producers g =
  let n = Router.size g in
  let prods = Array.make n [] in
  List.iter
    (fun (h : Router.hookup) ->
      if is_queue g h.to_idx then
        prods.(h.to_idx) <- h.from_idx :: prods.(h.to_idx))
    (Router.hookups g);
  Array.map List.rev prods

(* The region structure: union endpoints of every hookup EXCEPT edges
   into a Queue (those are the cuttable boundaries), then re-tie the
   pieces a cut must never separate: all producers of one Queue stay
   together (the ring is single-producer), and a RED stays with the
   downstream Queues whose lengths it reads (a cross-domain length probe
   would race). *)
let region_uf g =
  let n = Router.size g in
  let uf = uf_create n in
  List.iter
    (fun (h : Router.hookup) ->
      if not (is_queue g h.to_idx) then uf_union uf h.from_idx h.to_idx)
    (Router.hookups g);
  let prods = queue_producers g in
  Array.iter
    (fun ps ->
      match ps with
      | first :: rest -> List.iter (fun p -> uf_union uf first p) rest
      | [] -> ())
    prods;
  (* RED finds its queues by forward BFS exactly like red#initialize. *)
  List.iter
    (fun i ->
      if Router.class_of g i = "RED" then begin
        let seen = Array.make n false in
        let rec bfs j =
          if not seen.(j) then begin
            seen.(j) <- true;
            if is_queue g j then uf_union uf i j
            else
              List.iter (fun (_, k, _) -> bfs k) (Router.outputs_of g j)
          end
        in
        List.iter (fun (_, k, _) -> bfs k) (Router.outputs_of g i)
      end)
    (Router.indices g);
  uf

(* Region list from a union-find: [(min_index, members_ascending)] sorted
   by min index. *)
let regions_of_uf g uf =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun i ->
      let r = uf_find uf i in
      Hashtbl.replace tbl r (i :: (try Hashtbl.find tbl r with Not_found -> [])))
    (Router.indices g);
  Hashtbl.fold (fun _ members acc -> List.rev members :: acc) tbl []
  |> List.sort (fun a b -> compare (List.hd a) (List.hd b))

(* --- source ownership flood --------------------------------------------- *)

let join a b =
  match (a, b) with
  | Unowned, x | x, Unowned -> x
  | Shared, _ | _, Shared -> Shared
  | One x, One y -> if x = y then One x else Shared

(* Monotone flood over the One/Shared lattice: every element ends up
   tagged with the set-abstraction of push sources that reach it without
   crossing a Queue. *)
let flood_owners g succs sources =
  let n = Router.size g in
  let owner = Array.make n Unowned in
  let work = Queue.create () in
  let update i tag =
    let j = join owner.(i) tag in
    if j <> owner.(i) then begin
      owner.(i) <- j;
      Queue.add i work
    end
  in
  List.iter (fun s -> update s (One s)) sources;
  let drain () =
    while not (Queue.is_empty work) do
      let i = Queue.pop work in
      List.iter
        (fun s -> if not (is_queue g s) then update s owner.(i))
        succs.(i)
    done
  in
  drain ();
  (* A Queue's producers must form one region (single-producer ring), so
     a Queue fed from several distinct owners forces its privately-owned
     producers into the shared fabric; promoting them can reach further
     queues, hence the fixpoint loop. *)
  let prods = queue_producers g in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun ps ->
        let tags =
          List.sort_uniq compare
            (List.filter_map
               (fun p -> match owner.(p) with Unowned -> None | t -> Some t)
               ps)
        in
        if List.length tags > 1 then
          List.iter
            (fun p ->
              match owner.(p) with
              | One _ ->
                  update p Shared;
                  changed := true
              | _ -> ())
            ps)
      prods;
    drain ()
  done;
  owner

(* --- boundary insertion -------------------------------------------------- *)

(* Splice [f[fp] -> Queue -> Unqueue -> g[gp]] in place of a direct push
   edge. The new Queue is the cuttable boundary; the Unqueue is the task
   that drives the consumer side. *)
let insert_stage g ~ring_capacity (h : Router.hookup) =
  let qname = Router.fresh_name g "shard_q" in
  let qi =
    Router.add_element g ~name:qname ~cls:"Queue"
      ~config:(string_of_int ring_capacity)
  in
  let uname = Router.fresh_name g "shard_uq" in
  let ui = Router.add_element g ~name:uname ~cls:"Unqueue" ~config:"" in
  Router.remove_hookup g h;
  Router.add_hookup g
    { Router.from_idx = h.from_idx; from_port = h.from_port; to_idx = qi;
      to_port = 0 };
  Router.add_hookup g
    { Router.from_idx = qi; from_port = 0; to_idx = ui; to_port = 0 };
  Router.add_hookup g
    { Router.from_idx = ui; from_port = 0; to_idx = h.to_idx;
      to_port = h.to_port };
  (qi, ui)

(* --- element weights ----------------------------------------------------- *)

(* Cost per element for the LPT balance. Without measured weights every
   element counts 1 (region size, the static heuristic). With a measured
   ledger, an element's weight is its observed cost; indices past the
   array (stages this pass inserts after the profiling run) and
   non-positive entries (elements the profile never touched) fall back
   to 1 so totals stay positive and the ordering total. *)
let weight_of weights i =
  match weights with
  | None -> 1
  | Some a -> if i < Array.length a && a.(i) > 0 then a.(i) else 1

let region_weight weights region =
  List.fold_left (fun acc i -> acc + weight_of weights i) 0 region

(* Whether the existing Queue boundaries already yield a partition that
   can occupy [domains] shards without one region dominating. *)
let balanced_enough g uf ~weights ~domains =
  let regions = regions_of_uf g uf in
  let total =
    List.fold_left (fun a i -> a + weight_of weights i) 0 (Router.indices g)
  in
  let largest =
    List.fold_left (fun m r -> max m (region_weight weights r)) 0 regions
  in
  List.length regions >= domains
  && largest <= (total + domains - 1) / domains

(* --- shard assignment ---------------------------------------------------- *)

(* Longest-processing-time greedy: heaviest region first onto the least
   loaded shard. Ties break on lowest region min-index / lowest shard
   index, so the assignment is a pure function of (graph, domains,
   weights) — byte-identical across repeated calls on equal inputs. *)
let assign_shards regions ~weights ~domains =
  let ordered =
    List.sort
      (fun a b ->
        match compare (region_weight weights b) (region_weight weights a) with
        | 0 -> compare (List.hd a) (List.hd b)
        | c -> c)
      regions
  in
  let load = Array.make domains 0 in
  List.map
    (fun region ->
      let best = ref 0 in
      for s = 1 to domains - 1 do
        if load.(s) < load.(!best) then best := s
      done;
      load.(!best) <- load.(!best) + region_weight weights region;
      (region, !best))
    ordered

(* --- entry point --------------------------------------------------------- *)

let trivial g =
  let g = Router.of_ast_exn (Router.to_ast g) in
  let n = Router.size g in
  {
    pt_domains = 1;
    pt_graph = g;
    pt_shard_of = Array.make n 0;
    pt_shards = [| Router.indices g |];
    pt_cuts = [];
    pt_inserted = [];
  }

let compute ?(ring_capacity = 128) ?weights ~domains source_graph =
  if domains < 1 then
    Error (Printf.sprintf "partition: bad domain count %d" domains)
  else if ring_capacity < 1 then
    Error (Printf.sprintf "partition: bad ring capacity %d" ring_capacity)
  else if domains = 1 then Ok (trivial source_graph)
  else begin
    (* Normalize so indices are dense and match what Driver.instantiate
       will produce for the same graph. *)
    let g = Router.of_ast_exn (Router.to_ast source_graph) in
    match Check.resolve_processing g Registry.spec_table with
    | Error msgs -> Error (String.concat "\n" msgs)
    | Ok resolved ->
        let inserted =
          if balanced_enough g (region_uf g) ~weights ~domains then []
          else begin
            let succs = push_succs g resolved in
            let sources =
              List.filter
                (fun i ->
                  List.mem (Router.class_of g i) push_source_classes)
                (Router.indices g)
            in
            let owner = flood_owners g succs sources in
            (* Boundary edges: a privately-owned element pushing into the
               shared fabric (and not into a Queue, which is already a
               boundary). Collect first — insertion mutates the graph. *)
            let edges =
              List.filter
                (fun (h : Router.hookup) ->
                  (match
                     resolved.Check.output_kind.(h.from_idx).(h.from_port)
                   with
                  | Spec.Push | Spec.Agnostic -> true
                  | Spec.Pull -> false)
                  && (match owner.(h.from_idx) with One _ -> true | _ -> false)
                  && owner.(h.to_idx) = Shared
                  && not (is_queue g h.to_idx))
                (Router.hookups g)
            in
            List.map (insert_stage g ~ring_capacity) edges
          end
        in
        let uf = region_uf g in
        let regions = regions_of_uf g uf in
        let n = Router.size g in
        let shard_of = Array.make n (-1) in
        List.iter
          (fun (region, s) -> List.iter (fun i -> shard_of.(i) <- s) region)
          (assign_shards regions ~weights ~domains);
        let shards =
          Array.init domains (fun s ->
              List.filter (fun i -> shard_of.(i) = s) (Router.indices g))
        in
        let prods = queue_producers g in
        let cuts =
          List.filter_map
            (fun qi ->
              if not (is_queue g qi) then None
              else
                match prods.(qi) with
                | [] -> None
                | p :: _ ->
                    let from_shard = shard_of.(p) in
                    let to_shard = shard_of.(qi) in
                    if from_shard = to_shard then None
                    else
                      Some
                        {
                          cut_queue = qi;
                          cut_queue_name = Router.name g qi;
                          cut_from_shard = from_shard;
                          cut_to_shard = to_shard;
                          cut_inserted =
                            List.exists (fun (q, _) -> q = qi) inserted;
                        })
            (Router.indices g)
        in
        Ok
          {
            pt_domains = domains;
            pt_graph = g;
            pt_shard_of = shard_of;
            pt_shards = shards;
            pt_cuts = cuts;
            pt_inserted = inserted;
          }
  end

let regions graph =
  let g = Router.of_ast_exn (Router.to_ast graph) in
  match Check.resolve_processing g Registry.spec_table with
  | Error msgs -> Error (String.concat "\n" msgs)
  | Ok _ -> Ok (regions_of_uf g (region_uf g))

let shard_counts t = Array.map List.length t.pt_shards

let shard_weights ?weights t = Array.map (region_weight weights) t.pt_shards

let cut_of_queue t qi =
  List.find_opt (fun c -> c.cut_queue = qi) t.pt_cuts
