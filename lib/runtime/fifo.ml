(* Fixed-capacity FIFO over a flat array: the single-domain analogue of
   Spsc, used wherever the datapath buffers packets within one domain
   (the Queue element's buffered mode, the test device's rx/tx queues).
   Enqueue and dequeue are index bumps on a circular array — no
   per-element cell allocation (Stdlib.Queue conses a block per [add],
   which is minor-heap traffic per packet on the forwarding path).

   The slot array is sized on first [add] (and resized when the caller's
   capacity grows) using the added element itself as the fill value, so
   creating a FIFO allocates nothing — in particular no placeholder
   packet, which would disturb packet-id sequences. Dequeued slots keep
   their stale reference until overwritten; for packet queues that
   retains at most [capacity] recycled descriptors, which the pool owns
   anyway. *)

type 'a t = { mutable slots : 'a array; mutable head : int; mutable len : int }

let create () = { slots = [||]; head = 0; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let grow t cap fill =
  let ns = Array.make (max cap 1) fill in
  let on = Array.length t.slots in
  for i = 0 to t.len - 1 do
    ns.(i) <- t.slots.((t.head + i) mod on)
  done;
  t.slots <- ns;
  t.head <- 0

let add t ~cap x =
  if t.len >= cap then invalid_arg "Fifo.add: full";
  (* Grow geometrically, clamped to the capacity bound — [cap] may be
     max_int (an effectively unbounded queue), so never size to it. *)
  if t.len >= Array.length t.slots then
    grow t (min cap (max 8 (2 * (t.len + 1)))) x;
  let n = Array.length t.slots in
  (* A capacity shrink below the live length leaves the array larger
     than [cap]; indexing stays modulo the real array size. *)
  t.slots.((t.head + t.len) mod n) <- x;
  t.len <- t.len + 1

let take t =
  if t.len = 0 then invalid_arg "Fifo.take: empty";
  let x = t.slots.(t.head) in
  t.head <- (t.head + 1) mod Array.length t.slots;
  t.len <- t.len - 1;
  x

let take_opt t = if t.len = 0 then None else Some (take t)

let iter f t =
  let n = Array.length t.slots in
  for i = 0 to t.len - 1 do
    f t.slots.((t.head + i) mod n)
  done

let clear t =
  (* Stale references remain in the slots until overwritten. *)
  t.head <- 0;
  t.len <- 0
