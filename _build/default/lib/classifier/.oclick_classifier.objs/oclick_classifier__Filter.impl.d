lib/classifier/filter.ml: Bexpr List Oclick_lang Oclick_packet Printf String Tree
