lib/hw/engine.mli:
