(** External element-class specifications (paper §5.3).

    Optimizers never link with element implementations; instead each
    element class exports a small textual specification — class name, port
    counts, processing code, flow code — that the tools read. This module
    defines that specification and its little languages:

    - {b port counts} such as ["1/1"], ["1/2"], ["1/-"], ["1-/1"];
    - {b processing codes} such as ["h/h"], ["l/l"], ["a/ah"] where
      ['h'] is push, ['l'] is pull, ['a'] is agnostic, and the last
      letter repeats for any remaining ports;
    - {b flow codes} such as ["x/x"] or ["xy/x"]: an input flows to an
      output iff their letters match. *)

type port_kind = Push | Pull | Agnostic

type t = {
  s_class : string;
  s_ports : string;
  s_processing : string;
  s_flow : string;
}

type table = string -> t option
(** Lookup by class name; [None] means unknown class. *)

val make :
  ?ports:string -> ?processing:string -> ?flow:string -> string -> t
(** Defaults: ports ["1/1"], processing ["a/a"], flow ["x/x"]. *)

(** {2 Port counts} *)

type range = { lo : int; hi : int option }

val parse_port_counts : string -> (range * range) option
(** [parse_port_counts "1/2-"] = inputs exactly 1, outputs 2 or more. *)

val in_range : range -> int -> bool

(** {2 Processing codes} *)

val parse_processing : string -> (string * string) option
(** Splits at ['/']; both halves non-empty and made of [h], [l], [a]. *)

val port_processing : code:string -> int -> port_kind
(** The kind of port [i] given one half of a processing code; the last
    letter repeats. *)

val input_processing : t -> int -> port_kind
val output_processing : t -> int -> port_kind

(** {2 Flow codes} *)

val flows_to : t -> input:int -> output:int -> bool
(** Whether packets arriving on [input] can leave via [output],
    according to the flow code. *)

val kind_to_string : port_kind -> string
