lib/classifier/codegen.ml: Array Buffer Bytes Printf String Tree
