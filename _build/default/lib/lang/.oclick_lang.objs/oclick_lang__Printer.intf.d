lib/lang/printer.mli: Ast
