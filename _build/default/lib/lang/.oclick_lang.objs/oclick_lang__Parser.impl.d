lib/lang/parser.ml: Archive Ast Lexer List Printf String
