(** The stock pattern-replacement pairs shipped with the optimizer
    (paper §6.2 Fig. 4, §7.2).

    Three patterns introduce the combination elements, reducing the IP
    forwarding path from ten general-purpose elements to three (Figs. 5
    and 6); one more eliminates ARP processing on point-to-point links
    exposed by [click-combine] (Fig. 7). *)

val combo_text : string
(** The combination-element patterns, in Click pattern syntax. *)

val arp_elimination_text : string
(** The multiple-router ARP-elimination pattern. *)

val combos : unit -> Xform.pair list
val arp_elimination : unit -> Xform.pair list
