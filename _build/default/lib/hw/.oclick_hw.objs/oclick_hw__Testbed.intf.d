lib/hw/testbed.mli: Oclick_fault Oclick_graph Oclick_packet Platform Stdlib
