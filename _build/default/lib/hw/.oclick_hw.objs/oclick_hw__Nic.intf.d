lib/hw/nic.mli: Engine Oclick_packet Oclick_runtime Pci Platform
