(* Scalar vs batched transfer path on the Fig. 8 forwarding path.

   Unlike the figure sections, which report *simulated* cycles from the
   testbed cost model, this section measures real wall-clock throughput
   of the user-level driver: the full IP router graph forwarding UDP
   between two attached queue devices. The scalar variant runs the
   per-packet push/pull path with fresh allocations; the batched variant
   runs the same graph with `--batch`-style array transfers and a
   recycling packet pool. Both execute identical element code over
   identical traffic, so the ratio isolates the per-transfer overhead the
   batching work removes. *)

module Driver = Oclick_runtime.Driver
module Netdevice = Oclick_runtime.Netdevice
module Packet = Oclick_packet.Packet
module Pool = Oclick_packet.Packet.Pool
module Headers = Oclick_packet.Headers
module Ethaddr = Oclick_packet.Ethaddr
module Ipaddr = Oclick_packet.Ipaddr

let n_ifaces = 2
let burst = 256

type rig = {
  rg_driver : Driver.t;
  rg_devs : Netdevice.queue_device array;
  rg_pool : Pool.t option;
}

let make_rig ~batch ~pool =
  let graph = Common.base_graph n_ifaces in
  let devs =
    Array.init n_ifaces (fun i ->
        new Netdevice.queue_device (Printf.sprintf "eth%d" i) ())
  in
  let devices =
    Array.to_list (Array.map (fun d -> (d :> Netdevice.t)) devs)
  in
  let pool = if pool then Some (Pool.create ~capacity:4096 ()) else None in
  match Driver.instantiate ~devices ~batch ?pool graph with
  | Ok d -> { rg_driver = d; rg_devs = devs; rg_pool = pool }
  | Error e -> failwith ("batch bench: " ^ e)

(* The one traffic flow: host on eth0 sends UDP to the host on eth1. *)
let template =
  Headers.Build.udp
    ~src_eth:(Ethaddr.of_string_exn "00:00:c0:aa:00:02")
    ~dst_eth:(Ethaddr.of_string_exn "00:00:c0:00:00:01")
    ~src_ip:(Ipaddr.of_octets 10 0 0 2)
    ~dst_ip:(Ipaddr.of_octets 10 0 1 2)
    ~ttl:64 ()

(* Answer the router's ARP query on [dev] so the flow's next hop resolves
   before measurement starts. *)
let answer_arp (dev : Netdevice.queue_device) host_eth =
  match dev#collect with
  | Some q when Headers.Ether.ethertype q = 0x806 ->
      dev#inject
        (Headers.Build.arp_reply ~src_eth:host_eth
           ~src_ip:(Headers.Arp.target_ip ~off:14 q)
           ~dst_eth:(Headers.Arp.sender_eth ~off:14 q)
           ~dst_ip:(Headers.Arp.sender_ip ~off:14 q))
  | Some _ -> failwith "batch bench: expected an ARP query"
  | None -> failwith "batch bench: no ARP query emitted"

let prime rig =
  rig.rg_devs.(0)#inject (Packet.clone template);
  ignore (Driver.run_until_idle rig.rg_driver);
  answer_arp rig.rg_devs.(1) (Ethaddr.of_string_exn "00:00:c0:bb:01:02");
  ignore (Driver.run_until_idle rig.rg_driver);
  let rec drain n =
    match rig.rg_devs.(1)#collect with Some _ -> drain (n + 1) | None -> n
  in
  if drain 0 < 1 then failwith "batch bench: priming forward failed"

(* One measured burst: inject [burst] copies of the template, run the
   driver to completion, collect (and with a pool, recycle) the frames
   that reached eth1. Generation cost is symmetric — one buffer fill plus
   one header blit per packet — except that the pooled variant reuses
   recycled buffers where the scalar variant allocates fresh ones. *)
let run_burst rig =
  let len = Packet.length template in
  for _ = 1 to burst do
    let p =
      match rig.rg_pool with
      | Some pool -> Pool.alloc pool len
      | None -> Packet.create len
    in
    Packet.blit ~src:template ~src_pos:0 ~dst:p ~dst_pos:0 ~len;
    rig.rg_devs.(0)#inject p
  done;
  ignore (Driver.run_until_idle rig.rg_driver);
  let rec drain n =
    match rig.rg_devs.(1)#collect with
    | Some p ->
        (match rig.rg_pool with
        | Some pool -> Pool.recycle pool p
        | None -> ());
        drain (n + 1)
    | None -> n
  in
  drain 0

let run_mode ~batch ~pool ~packets =
  let rig = make_rig ~batch ~pool in
  prime rig;
  let bursts = max 1 (packets / burst) in
  (* warmup: fault counters settle, pool fills, caches warm *)
  for _ = 1 to max 1 (bursts / 10) do
    ignore (run_burst rig)
  done;
  let forwarded = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to bursts do
    forwarded := !forwarded + run_burst rig
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let offered = bursts * burst in
  (!forwarded, offered, dt, float_of_int !forwarded /. dt)

let run () =
  Common.section "batch: scalar vs batched transfer path (wall clock)";
  let packets = if !Common.smoke then 2_048 else 262_144 in
  let batch_size = 32 in
  Printf.printf
    "IP router (%d interfaces), one UDP flow, %d packets per variant\n"
    n_ifaces packets;
  let s_fwd, s_off, s_dt, s_pps =
    run_mode ~batch:1 ~pool:false ~packets
  in
  let b_fwd, b_off, b_dt, b_pps =
    run_mode ~batch:batch_size ~pool:true ~packets
  in
  let speedup = b_pps /. s_pps in
  Printf.printf "\n%-26s %12s %12s %10s\n" "variant" "forwarded" "kpkts/s"
    "time s";
  Printf.printf "%-26s %12d %12.1f %10.3f\n" "scalar (batch 1)" s_fwd
    (Common.kpps s_pps) s_dt;
  Printf.printf "%-26s %12d %12.1f %10.3f\n"
    (Printf.sprintf "batched (batch %d + pool)" batch_size)
    b_fwd (Common.kpps b_pps) b_dt;
  Printf.printf "\nspeedup: %.2fx\n" speedup;
  if s_fwd <> s_off || b_fwd <> b_off then
    Printf.printf "warning: lossy run (scalar %d/%d, batched %d/%d)\n" s_fwd
      s_off b_fwd b_off;
  Common.write_json ~section:"batch"
    (Common.J_obj
       [
         ("section", Common.J_string "batch");
         ("graph", Common.J_string "ip-router");
         ("interfaces", Common.J_int n_ifaces);
         ("burst", Common.J_int burst);
         ("smoke", Common.J_bool !Common.smoke);
         ( "variants",
           Common.J_list
             [
               Common.J_obj
                 [
                   ("name", Common.J_string "scalar");
                   ("batch", Common.J_int 1);
                   ("pool", Common.J_bool false);
                   ("offered", Common.J_int s_off);
                   ("forwarded", Common.J_int s_fwd);
                   ("seconds", Common.J_float s_dt);
                   ("pps", Common.J_float s_pps);
                 ];
               Common.J_obj
                 [
                   ("name", Common.J_string "batched");
                   ("batch", Common.J_int batch_size);
                   ("pool", Common.J_bool true);
                   ("offered", Common.J_int b_off);
                   ("forwarded", Common.J_int b_fwd);
                   ("seconds", Common.J_float b_dt);
                   ("pps", Common.J_float b_pps);
                 ];
             ] );
         ("speedup", Common.J_float speedup);
       ])
