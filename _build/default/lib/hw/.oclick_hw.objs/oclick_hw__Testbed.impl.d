lib/hw/testbed.ml: Array Btb Cost_model Engine Host List Nic Oclick_graph Oclick_packet Oclick_runtime Pci Platform Printf String
