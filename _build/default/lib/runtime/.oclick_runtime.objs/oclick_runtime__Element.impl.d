lib/runtime/element.ml: Array Hooks List Netdevice Oclick_graph Oclick_packet Option Printexc Printf String Sys
