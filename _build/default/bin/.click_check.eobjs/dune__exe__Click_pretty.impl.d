bin/click_pretty.ml: Arg Cmdliner Oclick_lang Term Tool_common
