lib/graph/router.mli: Oclick_lang
