(* Device and source elements. PollDevice/ToDevice talk to a Netdevice
   looked up by name at initialization — Click's polling drivers (paper
   §3); sources drive the pure runtime in tests and examples. *)

open Prelude
module Ether = Headers.Ether

(* Per-RX-packet, so no Ethaddr string may be built here: the broadcast
   and group tests read the destination MAC as two word loads / one bit
   probe straight from the frame. *)
let classify_link_type p =
  if Packet.length p >= 6 then begin
    if Packet.get_u32 p 0 = 0xffffffff && Packet.get_u16 p 4 = 0xffff then
      Packet.Broadcast
    else if Packet.get_u8 p 0 land 1 = 1 then Packet.Multicast
    else Packet.To_host
  end
  else Packet.To_host

class poll_device name =
  object (self)
    inherit E.base name
    val mutable dev_name = ""
    val mutable dev : Netdevice.t option = None
    val mutable burst = 8
    val mutable received = 0
    val mutable dev_number = 0
    method class_name = "PollDevice"
    method! port_count = "0/1"
    method! processing = "h/h"

    method! configure config =
      match Args.split config with
      | [ d ] ->
          dev_name <- d;
          Ok ()
      | [ d; b ] -> (
          match Args.parse_int b with
          | Some b when b > 0 ->
              dev_name <- d;
              burst <- b;
              Ok ()
          | _ -> Error "bad PollDevice burst")
      | _ -> Error "PollDevice expects DEVNAME [, BURST]"

    method! initialize ctx =
      match ctx.E.ic_device dev_name with
      | Some d ->
          dev <- Some d;
          dev_number <- Hashtbl.hash dev_name land 0xff;
          Ok ()
      | None -> Error (Printf.sprintf "no device named %S" dev_name)

    method! wants_task = true

    method! run_task =
      match dev with
      | None -> false
      | Some d ->
          if self#batch_size <= 1 then
            let rec loop i did =
              if i >= burst then did
              else
                match d#rx () with
                | None -> did
                | Some p ->
                    received <- received + 1;
                    let anno = Packet.anno p in
                    anno.Packet.device <- dev_number;
                    anno.Packet.link_type <- classify_link_type p;
                    self#output 0 p;
                    loop (i + 1) true
            in
            loop 0 false
          else begin
            (* Batch mode: the batch is the polling burst — one ring
               drain, one annotation loop, one downstream transfer. *)
            let buf = self#scratch self#batch_size in
            let got = d#rx_batch buf in
            if got = 0 then false
            else begin
              received <- received + got;
              for i = 0 to got - 1 do
                let p = buf.(i) in
                let anno = Packet.anno p in
                anno.Packet.device <- dev_number;
                anno.Packet.link_type <- classify_link_type p
              done;
              self#output_batch 0 (self#sub_batch buf got);
              true
            end
          end

    method! stats = [ ("received", received) ]
  end

class to_device name =
  object (self)
    inherit E.base name
    val mutable dev_name = ""
    val mutable dev : Netdevice.t option = None
    val mutable burst = 8
    val mutable sent = 0
    val mutable rejected = 0
    method class_name = "ToDevice"
    method! port_count = "1/0"
    method! processing = "l/h"

    method! configure config =
      match Args.split config with
      | [ d ] ->
          dev_name <- d;
          Ok ()
      | [ d; b ] -> (
          match Args.parse_int b with
          | Some b when b > 0 ->
              dev_name <- d;
              burst <- b;
              Ok ()
          | _ -> Error "bad ToDevice burst")
      | _ -> Error "ToDevice expects DEVNAME [, BURST]"

    method! initialize ctx =
      match ctx.E.ic_device dev_name with
      | Some d ->
          dev <- Some d;
          Ok ()
      | None -> Error (Printf.sprintf "no device named %S" dev_name)

    method! wants_task = true

    method! run_task =
      match dev with
      | None -> false
      | Some d ->
          if self#batch_size <= 1 then
            let rec loop i did =
              if i >= burst || not d#tx_ready then did
              else
                match self#input_pull 0 with
                | None -> did
                | Some p ->
                    if d#tx p then sent <- sent + 1
                    else begin
                      rejected <- rejected + 1;
                      self#drop ~reason:"device transmit ring full" p
                    end;
                    loop (i + 1) true
            in
            loop 0 false
          else begin
            (* Batch mode: pull exactly what the TX ring can take right
               now, in one upstream request. *)
            let want = min self#batch_size d#tx_space in
            if want <= 0 then false
            else begin
              let buf = self#scratch self#batch_size in
              let dst = if want = Array.length buf then buf else Array.sub buf 0 want in
              let got = self#input_pull_batch 0 dst in
              if got = 0 then false
              else begin
                for i = 0 to got - 1 do
                  let p = dst.(i) in
                  if d#tx p then sent <- sent + 1
                  else begin
                    rejected <- rejected + 1;
                    self#drop ~reason:"device transmit ring full" p
                  end
                done;
                true
              end
            end
          end

    method! stats = [ ("sent", sent); ("rejected", rejected) ]
  end

(* InfiniteSource: pushes copies of a template packet as a task.
   Keywords: LENGTH (data bytes, default 60), LIMIT (total packets,
   default unlimited), BURST (per task run, default 1), ACTIVE. *)
class infinite_source name =
  object (self)
    inherit E.base name
    val mutable length = 60
    val mutable limit = -1
    val mutable burst = 1
    val mutable active = true
    val mutable sent = 0
    method class_name = "InfiniteSource"
    method! port_count = "0/1"
    method! processing = "h/h"

    method! configure config =
      let _positional, keywords = parse_positional_and_keywords config in
      let rec apply = function
        | [] -> Ok ()
        | ("LENGTH", v) :: rest -> (
            match Args.parse_int v with
            | Some n when n >= 0 ->
                length <- n;
                apply rest
            | _ -> Error "bad LENGTH")
        | ("LIMIT", v) :: rest -> (
            match Args.parse_int v with
            | Some n ->
                limit <- n;
                apply rest
            | _ -> Error "bad LIMIT")
        | ("BURST", v) :: rest -> (
            match Args.parse_int v with
            | Some n when n > 0 ->
                burst <- n;
                apply rest
            | _ -> Error "bad BURST")
        | ("ACTIVE", v) :: rest -> (
            match Args.parse_bool v with
            | Some b ->
                active <- b;
                apply rest
            | _ -> Error "bad ACTIVE")
        | (k, _) :: _ -> Error (Printf.sprintf "unknown keyword %S" k)
      in
      apply keywords

    method! wants_task = true

    method! run_task =
      if (not active) || (limit >= 0 && sent >= limit) then false
      else if self#batch_size <= 1 then begin
        let n =
          if limit < 0 then burst else min burst (limit - sent)
        in
        for _ = 1 to n do
          sent <- sent + 1;
          self#output 0 (self#alloc length)
        done;
        n > 0
      end
      else begin
        (* Batch mode drives the source at least one full batch per task
           run, allocating through the pool when one is installed. *)
        let per = max burst self#batch_size in
        let n = if limit < 0 then per else min per (limit - sent) in
        let emitted = ref 0 in
        while !emitted < n do
          let k = min self#batch_size (n - !emitted) in
          let buf = self#scratch self#batch_size in
          for i = 0 to k - 1 do
            buf.(i) <- self#alloc length
          done;
          sent <- sent + k;
          emitted := !emitted + k;
          self#output_batch 0 (self#sub_batch buf k)
        done;
        n > 0
      end

    method! stats = [ ("sent", sent) ]

    method! write_handler handler value =
      match handler with
      | "active" -> (
          match Args.parse_bool value with
          | Some b ->
              active <- b;
              Ok ()
          | None -> Error "active expects a boolean")
      | "reset" ->
          sent <- 0;
          Ok ()
      | h -> Error (Printf.sprintf "InfiniteSource: no write handler %S" h)
  end

(* UDPSource: a source of well-formed Ethernet/IP/UDP test frames, the
   traffic the paper's source hosts generate (§8.1). *)
class udp_source name =
  object (self)
    inherit E.base name
    val mutable src_ip = Ipaddr.of_octets 10 0 0 1
    val mutable dst_ip = Ipaddr.of_octets 10 0 0 2
    val mutable src_eth = Ethaddr.zero
    val mutable dst_eth = Ethaddr.zero
    val mutable payload = 14 (* 64-byte frames like the paper's tests *)
    val mutable limit = -1
    val mutable burst = 1
    val mutable sent = 0
    method class_name = "UDPSource"
    method! port_count = "0/1"
    method! processing = "h/h"

    method! configure config =
      let _positional, keywords = parse_positional_and_keywords config in
      let rec apply = function
        | [] -> Ok ()
        | ("SRCIP", v) :: rest -> (
            match Ipaddr.of_string v with
            | Some a ->
                src_ip <- a;
                apply rest
            | None -> Error "bad SRCIP")
        | ("DSTIP", v) :: rest -> (
            match Ipaddr.of_string v with
            | Some a ->
                dst_ip <- a;
                apply rest
            | None -> Error "bad DSTIP")
        | ("SRCETH", v) :: rest -> (
            match Ethaddr.of_string v with
            | Some a ->
                src_eth <- a;
                apply rest
            | None -> Error "bad SRCETH")
        | ("DSTETH", v) :: rest -> (
            match Ethaddr.of_string v with
            | Some a ->
                dst_eth <- a;
                apply rest
            | None -> Error "bad DSTETH")
        | ("PAYLOAD", v) :: rest -> (
            match Args.parse_int v with
            | Some n when n >= 0 ->
                payload <- n;
                apply rest
            | _ -> Error "bad PAYLOAD")
        | ("LIMIT", v) :: rest -> (
            match Args.parse_int v with
            | Some n ->
                limit <- n;
                apply rest
            | _ -> Error "bad LIMIT")
        | ("BURST", v) :: rest -> (
            match Args.parse_int v with
            | Some n when n > 0 ->
                burst <- n;
                apply rest
            | _ -> Error "bad BURST")
        | (k, _) :: _ -> Error (Printf.sprintf "unknown keyword %S" k)
      in
      apply keywords

    method! wants_task = true

    method! run_task =
      if limit >= 0 && sent >= limit then false
      else begin
        let n = if limit < 0 then burst else min burst (limit - sent) in
        for _ = 1 to n do
          sent <- sent + 1;
          let p =
            Headers.Build.udp ~src_eth ~dst_eth ~src_ip ~dst_ip
              ~payload_len:payload ()
          in
          self#output 0 p
        done;
        n > 0
      end

    method! stats = [ ("sent", sent) ]
  end

let register () =
  def "PollDevice" ~ports:"0/1" ~processing:"h/h" (fun n ->
      (new poll_device n :> E.t));
  def "FromDevice" ~ports:"0/1" ~processing:"h/h" (fun n ->
      (new poll_device n :> E.t));
  def "ToDevice" ~ports:"1/0" ~processing:"l/h" (fun n ->
      (new to_device n :> E.t));
  def "InfiniteSource" ~ports:"0/1" ~processing:"h/h" (fun n ->
      (new infinite_source n :> E.t));
  def "UDPSource" ~ports:"0/1" ~processing:"h/h" (fun n ->
      (new udp_source n :> E.t))
