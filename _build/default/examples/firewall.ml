(* The paper's §4 experiment: a 17-rule firewall from "Building Internet
   Firewalls" expressed as an IPFilter, and the effect of
   click-fastclassifier on a packet that matches the next-to-last rule
   (DNS-5).

   Run with:  dune exec examples/firewall.exe *)

module Tree = Oclick_classifier.Tree
module Filter = Oclick_classifier.Filter
module Optimize = Oclick_classifier.Optimize
module Compile = Oclick_classifier.Compile
module Headers = Oclick_packet.Headers
module Packet = Oclick_packet.Packet
module Ipaddr = Oclick_packet.Ipaddr

(* Seventeen rules in the style of Zwicky/Cooper/Chapman's screened-host
   configuration; the sixteenth (next-to-last) is the DNS-5 rule the
   paper measures. *)
let rules =
  [
    "deny ip frag";
    "deny src net 127.0.0.0/8";
    "deny src net 10.0.0.0/8";
    "deny src net 172.16.0.0/12";
    "allow dst host 192.168.1.2 && tcp dst port 25";
    "allow src host 192.168.1.2 && tcp src port 25 && tcp opt ack";
    "allow src net 192.168.1.0/24 && tcp dst port 80";
    "allow dst net 192.168.1.0/24 && tcp src port 80 && tcp opt ack";
    "deny tcp dst port 23";
    "deny tcp dst port 111";
    "allow dst host 192.168.1.2 && tcp dst port 22";
    "allow icmp type 8";
    "allow icmp type 0";
    "deny udp dst port 69";
    "deny udp dst port 2049";
    "allow dst host 192.168.1.3 && udp dst port 53" (* DNS-5 *);
    "deny all";
  ]

let firewall_config = String.concat ", " rules

let () =
  let tree =
    match Filter.ipfilter_tree firewall_config with
    | Ok t -> t
    | Error e -> failwith e
  in
  Printf.printf "17-rule firewall: %d decision nodes as built\n"
    (Tree.node_count tree);
  let tree = Optimize.optimize tree in
  Printf.printf "after tree optimization: %d nodes, depth %d\n"
    (Tree.node_count tree) (Tree.depth tree);
  (* The DNS-5 packet: UDP to the DNS server, port 53. It traverses most
     of the tree before matching rule 16. *)
  let dns5 =
    let p =
      Headers.Build.udp
        ~src_ip:(Ipaddr.of_string_exn "204.152.184.134")
        ~dst_ip:(Ipaddr.of_string_exn "192.168.1.3")
        ~src_port:1717 ~dst_port:53 ()
    in
    Packet.pull p 14 (* IPFilter sees the bare IP packet *);
    p
  in
  let out, visited = Tree.classify_count tree dns5 in
  Printf.printf "DNS-5 packet: output %d (0 = allow), %d nodes visited\n" out
    visited;
  assert (out = 0);
  (* Interpreted vs compiled classification, wall-clock. *)
  let compiled = Compile.compile_packet tree in
  assert (compiled dns5 = out);
  let time f =
    let iters = 2_000_000 in
    let t0 = Sys.time () in
    for _ = 1 to iters do
      ignore (f dns5)
    done;
    (Sys.time () -. t0) /. float_of_int iters *. 1e9
  in
  let interp_ns = time (fun p -> Tree.classify tree p) in
  let compiled_ns = time compiled in
  Printf.printf
    "interpreted: %.0f ns/packet; fastclassifier (compiled): %.0f ns/packet \
     (%.1fx)\n"
    interp_ns compiled_ns (interp_ns /. compiled_ns);
  Printf.printf
    "(the paper measures 388 ns -> 188 ns for this packet on a 700 MHz \
     Pentium III)\n";
  print_endline "firewall OK"
