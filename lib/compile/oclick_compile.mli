(** The whole-graph datapath compiler.

    The paper's biggest wins — click-devirtualize (§5) and
    click-fastclassifier (§4) — remove virtual-dispatch and
    generic-classifier overhead at the source level; this pass finishes
    the job at execution time. Given an instantiated {!Driver.t}, it
    compiles the push paths into direct-call closures:

    - {b devirtualized transfers} — every push connection becomes one
      [Packet.t -> unit] closure (and a batch-array twin), stored in a
      dense per-port array on the source element. The hot path pays no
      port-array lookup, no option match, no transfer-record allocation,
      and — when the installed hooks are the no-op {!Hooks.null} ones —
      no hook call at all.
    - {b chain fusion} — elements that implement {!Element.base.fuse}
      (every [simple_action] element, the classifiers, LookupIPRoute —
      whose fused body calls the DIR-24-8 trie directly —
      Queue) contribute their per-packet body directly, so a maximal run
      of such elements collapses into one nested closure: a packet
      crosses CheckIPHeader → DecIPTTL → … in straight-line calls.
    - {b compiled classifiers} — classifier dispatch inside compiled
      segments runs the decision tree as nested closures with
      shared-subtree dedup ({!Oclick_classifier.Codegen.closures}).

    Semantics are bit-identical to the interpreted path: mangle
    (fault injection), quarantine checks, fault containment and drop
    attribution, work charges, and — when observation is on — the exact
    per-hop hook event sequence are all preserved, so outcome totals,
    drop reasons, conservation balances and obs ledgers are equal by
    construction. Elements without a fused body (devices, ARP, Tee,
    ICMPError, …) keep dynamic [push] dispatch behind a compiled
    connection: compilation degrades per element, never per graph.

    The only configurations conservatively rejected are direct
    self-loops (an element pushing straight into itself), where fusion
    cannot bottom out. Cyclic paths through several elements (the IP
    router's ICMPError loops) compile fine: the back edge falls back to
    dynamic dispatch. *)

type stats = {
  st_connections : int;  (** push connections devirtualized *)
  st_fused : int;  (** elements contributing fused per-packet bodies *)
  st_fallbacks : int;  (** connections delivering via dynamic dispatch *)
  st_regions : Oclick_fdd.region list;
      (** cross-element regions fused into single decision diagrams
          (empty unless compiled with [~fuse:true]) *)
}

val install : ?fuse:bool -> Oclick_runtime.Driver.t -> (stats, string) result
(** Compile the driver's push paths in place. The installed hooks and
    fault injectors are captured at compile time; callers must not
    change them afterwards (the driver never does).

    With [~fuse:true], the cross-element FDD pass ({!Oclick_fdd}) runs
    first on every push region: cascades of classifiers, paint
    writes/switches, header guards and route lookups collapse into one
    decision-diagram closure per region, with per-element fusion as the
    universal fallback. Observable behaviour is unchanged either way. *)

val last_stats : unit -> stats option
(** Stats of the most recent {!install} in this process, or [None] if it
    never ran. For tools that compile through [Driver.instantiate] —
    which discards the stats — and want to report fused regions
    afterwards (oclick-report's fused pass). *)

val register : unit -> unit
(** Make [Driver.instantiate ~compile:true] work by registering
    {!install} with {!Oclick_runtime.Driver.register_compiler}. *)
