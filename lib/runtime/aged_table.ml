(* Bounded, age-evicted association table.

   The overload-resilience workhorse: stateful elements (ARP caches,
   rewriter flow tables) keep per-peer state here instead of in a bare
   Hashtbl, so adversarial traffic (address scans, ARP storms) costs a
   bounded amount of memory and old state ages out instead of
   accumulating forever.

   Implementation: a Hashtbl of intrusive doubly-linked nodes kept in
   least-recently-used order. Every operation is O(1) (sweeps are
   amortized), so a scan that misses on every lookup cannot degrade the
   table into linear behaviour.

   Time comes from a pluggable [clock] returning nanoseconds — the
   testbed installs its simulated clock, live tools install the wall
   clock, and the default of [fun () -> 0] disables aging entirely
   (every entry is forever young), which keeps unit tests deterministic
   unless they opt in. *)

type reason = Capacity | Age

type ('k, 'v) node = {
  nd_key : 'k;
  mutable nd_value : 'v;
  mutable nd_stamp : int;  (* last-touch time, clock ns *)
  mutable nd_prev : ('k, 'v) node option;
  mutable nd_next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable capacity : int;  (* 0 = unbounded *)
  mutable max_age_ns : int;  (* 0 = never ages *)
  mutable clock : unit -> int;
  mutable lru : ('k, 'v) node option;  (* least recently used *)
  mutable mru : ('k, 'v) node option;  (* most recently used *)
  mutable on_evict : 'k -> 'v -> reason -> unit;
  mutable evicted_capacity : int;
  mutable evicted_age : int;
}

let create ?(capacity = 0) ?(max_age_ns = 0)
    ?(on_evict = fun _ _ _ -> ()) () =
  {
    tbl = Hashtbl.create 64;
    capacity = max 0 capacity;
    max_age_ns = max 0 max_age_ns;
    clock = (fun () -> 0);
    lru = None;
    mru = None;
    on_evict;
    evicted_capacity = 0;
    evicted_age = 0;
  }

let set_clock t f = t.clock <- f
let set_capacity t n = t.capacity <- max 0 n
let set_max_age_ns t n = t.max_age_ns <- max 0 n
let set_on_evict t f = t.on_evict <- f
let capacity t = t.capacity
let max_age_ns t = t.max_age_ns
let length t = Hashtbl.length t.tbl
let evicted_capacity t = t.evicted_capacity
let evicted_age t = t.evicted_age
let evicted t = t.evicted_capacity + t.evicted_age

(* Unlink [n] from the recency list (it must be linked). *)
let unlink t n =
  (match n.nd_prev with
  | Some p -> p.nd_next <- n.nd_next
  | None -> t.lru <- n.nd_next);
  (match n.nd_next with
  | Some s -> s.nd_prev <- n.nd_prev
  | None -> t.mru <- n.nd_prev);
  n.nd_prev <- None;
  n.nd_next <- None

(* Link [n] at the most-recently-used end. *)
let link_mru t n =
  n.nd_prev <- t.mru;
  n.nd_next <- None;
  (match t.mru with Some m -> m.nd_next <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let evict t n why =
  unlink t n;
  Hashtbl.remove t.tbl n.nd_key;
  (match why with
  | Capacity -> t.evicted_capacity <- t.evicted_capacity + 1
  | Age -> t.evicted_age <- t.evicted_age + 1);
  t.on_evict n.nd_key n.nd_value why

(* Age out expired entries from the LRU end. The list is ordered by
   last touch, so the first young entry terminates the walk: the cost
   of a sweep is the number of evictions it performs, amortized O(1). *)
let sweep t =
  if t.max_age_ns > 0 then begin
    let now = t.clock () in
    let rec loop () =
      match t.lru with
      | Some n when now - n.nd_stamp > t.max_age_ns ->
          evict t n Age;
          loop ()
      | _ -> ()
    in
    loop ()
  end

let touch t n =
  n.nd_stamp <- t.clock ();
  unlink t n;
  link_mru t n

let find t k =
  sweep t;
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      touch t n;
      Some n.nd_value
  | None -> None

(* Non-touching lookup: reads the value without refreshing recency or
   stamp (and without sweeping), for bookkeeping paths that must not
   keep an entry alive. *)
let peek t k =
  match Hashtbl.find_opt t.tbl k with
  | Some n -> Some n.nd_value
  | None -> None

let mem t k = Hashtbl.mem t.tbl k

let put t k v =
  sweep t;
  (match Hashtbl.find_opt t.tbl k with
  | Some n ->
      n.nd_value <- v;
      touch t n
  | None ->
      (* Make room first so the table never exceeds capacity, even
         transiently. *)
      if t.capacity > 0 then
        while Hashtbl.length t.tbl >= t.capacity do
          match t.lru with
          | Some n -> evict t n Capacity
          | None -> assert false
        done;
      let n =
        { nd_key = k; nd_value = v; nd_stamp = t.clock ();
          nd_prev = None; nd_next = None }
      in
      Hashtbl.add t.tbl k n;
      link_mru t n)

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl k
  | None -> ()

let iter t f =
  let rec loop = function
    | Some n ->
        let next = n.nd_next in
        f n.nd_key n.nd_value;
        loop next
    | None -> ()
  in
  loop t.lru

let fold t f acc =
  let rec loop acc = function
    | Some n ->
        let next = n.nd_next in
        loop (f n.nd_key n.nd_value acc) next
    | None -> acc
  in
  loop acc t.lru

let clear t =
  Hashtbl.reset t.tbl;
  t.lru <- None;
  t.mru <- None
