(** A minimal discrete-event simulation engine.

    Time is in integer nanoseconds. Events fire in time order; ties fire
    in scheduling order (the queue is stable). *)

type t

val create : unit -> t
val now : t -> int
(** Current simulation time, ns. *)

val schedule : t -> at:int -> (unit -> unit) -> unit
(** Schedule an event at absolute time [at] (clamped to [now]). *)

val schedule_after : t -> delay:int -> (unit -> unit) -> unit

val run_until : t -> int -> unit
(** Fire every event with time <= the horizon; {!now} ends at the horizon. *)

val pending : t -> int
(** Number of events still queued. *)
