lib/optim/fastclassifier.ml: Hashtbl List Oclick_classifier Oclick_elements Oclick_graph Printf String
