(* ARP handling: ARPQuerier encapsulates IP packets in Ethernet headers,
   resolving the next hop with real ARP queries; ARPResponder answers
   queries for the addresses it is configured with. *)

open Prelude
module Ether = Headers.Ether
module Arp = Headers.Arp

(* Each unresolved address holds a small bounded FIFO of pending
   packets (Click holds one); queries for the same address are
   rate-limited. The whole table is bounded and age-evicted
   (Aged_table), so address scans cost bounded memory, and evicting an
   entry turns its held packets into accounted drops. *)
type arp_entry = {
  mutable ae_eth : Ethaddr.t option;
  ae_pending : Packet.t Queue.t;
  mutable ae_last_query : int;  (* clock ns of last query; -1 = never *)
}

let default_arp_capacity = 512
let default_arp_timeout_ms = 300_000 (* Click's 5-minute entry timeout *)
let default_query_interval_ms = 1_000
let default_pending_cap = 4

class arp_querier name =
  object (self)
    inherit E.base name
    val mutable my_ip = 0
    val mutable my_eth = Ethaddr.zero
    val table : (Ipaddr.t, arp_entry) Aged_table.t = Aged_table.create ()
    val mutable pending_cap = default_pending_cap
    val mutable query_interval_ns = default_query_interval_ms * 1_000_000
    val mutable queries = 0
    val mutable suppressed = 0
    val mutable responses = 0
    val mutable encapsulated = 0
    method class_name = "ARPQuerier"
    method! port_count = "2/1"
    method! processing = "h/h"
    (* IP packets arrive on 0, ARP responses on 1; both leave via 0. *)
    method! flow_code = "xy/x"

    method! set_clock f =
      clock <- f;
      Aged_table.set_clock table f

    method private drop_pending reason e =
      Queue.iter (fun held -> self#drop ~reason held) e.ae_pending;
      Queue.clear e.ae_pending

    method! configure config =
      let positional, keywords = parse_positional_and_keywords config in
      let bad = ref None in
      let int_kw key default ~min =
        match List.assoc_opt key keywords with
        | None -> default
        | Some v -> (
            match Args.parse_int v with
            | Some n when n >= min -> n
            | _ ->
                if !bad = None then
                  bad :=
                    Some
                      (Printf.sprintf "ARPQuerier: bad %s %S (integer >= %d)"
                         key v min);
                default)
      in
      let capacity = int_kw "CAPACITY" default_arp_capacity ~min:0 in
      let timeout_ms = int_kw "TIMEOUT" default_arp_timeout_ms ~min:0 in
      let interval_ms =
        int_kw "QUERY_INTERVAL" default_query_interval_ms ~min:0
      in
      let pcap = int_kw "PENDING" default_pending_cap ~min:1 in
      List.iter
        (fun (k, _) ->
          if
            (not (List.mem k [ "CAPACITY"; "TIMEOUT"; "QUERY_INTERVAL"; "PENDING" ]))
            && !bad = None
          then bad := Some (Printf.sprintf "ARPQuerier: unknown keyword %s" k))
        keywords;
      match !bad with
      | Some msg -> Error msg
      | None -> (
          match positional with
          | [ ip; eth ] -> (
              match (Ipaddr.of_string ip, Ethaddr.of_string eth) with
              | Some ip, Some eth ->
                  my_ip <- ip;
                  my_eth <- eth;
                  Aged_table.set_capacity table capacity;
                  Aged_table.set_max_age_ns table (timeout_ms * 1_000_000);
                  Aged_table.set_on_evict table (fun _ e _why ->
                      self#drop_pending "ARP entry evicted" e);
                  query_interval_ns <- interval_ms * 1_000_000;
                  pending_cap <- pcap;
                  Ok ()
              | _ -> Error "ARPQuerier expects IP, ETH")
          | _ -> Error "ARPQuerier expects IP, ETH")

    (* Per-packet on the datapath: the cache-hit side must not allocate,
       hence [find_exn] rather than [find]. *)
    method private entry ip =
      match Aged_table.find_exn table ip with
      | e -> e
      | exception Not_found ->
          let e =
            { ae_eth = None; ae_pending = Queue.create (); ae_last_query = -1 }
          in
          Aged_table.put table ip e;
          e

    (* Send at most one query per QUERY_INTERVAL per unresolved address:
       under an address scan or ARP storm the querier no longer amplifies
       every data packet into a broadcast. *)
    method private maybe_query e target_ip =
      let now = clock () in
      if
        e.ae_last_query >= 0
        && query_interval_ns > 0
        && now - e.ae_last_query < query_interval_ns
      then suppressed <- suppressed + 1
      else begin
        e.ae_last_query <- now;
        queries <- queries + 1;
        let q =
          Headers.Build.arp_query ~src_eth:my_eth ~src_ip:my_ip ~target_ip
        in
        self#spawn q;
        self#output 0 q
      end

    method private encap_and_send p dst_eth =
      Ether.encap p ~dst:dst_eth ~src:my_eth ~ethertype:Ether.ethertype_ip;
      encapsulated <- encapsulated + 1;
      self#output 0 p

    method! push port p =
      if port = 0 then begin
        (* An IP packet: resolve the destination annotation. *)
        let dst = (Packet.anno p).Packet.dst_ip in
        let e = self#entry dst in
        match e.ae_eth with
        | Some eth -> self#encap_and_send p eth
        | None ->
            (* Hold the packet (bounded FIFO per address; overflow drops
               the oldest so the freshest traffic survives resolution). *)
            if Queue.length e.ae_pending >= pending_cap then
              self#drop ~reason:"ARP pending overflow" (Queue.pop e.ae_pending);
            Queue.push p e.ae_pending;
            self#maybe_query e dst
      end
      else begin
        (* An ARP response: learn, and release any held packets. *)
        responses <- responses + 1;
        (if
           Packet.length p >= Ether.header_length + Arp.packet_length
           && Arp.op ~off:Ether.header_length p = Arp.op_reply
         then begin
           let ip = Arp.sender_ip ~off:Ether.header_length p in
           let eth = Arp.sender_eth ~off:Ether.header_length p in
           let e = self#entry ip in
           e.ae_eth <- Some eth;
           while not (Queue.is_empty e.ae_pending) do
             self#encap_and_send (Queue.pop e.ae_pending) eth
           done
         end);
        (* The response itself (or whatever malformed frame landed on the
           response port) is consumed here either way. *)
        self#drop ~reason:"ARP response consumed" p
      end

    method! push_batch port batch =
      if port <> 0 then
        (* ARP responses are rare control traffic: scalar loop. *)
        let f = self#push port in
        Array.iter (fun p -> self#guard f p) batch
      else begin
        (* Steady-state fast path: every destination already resolved.
           Encapsulate in place and forward the resolved prefix runs in
           batched transfers; unresolved or faulting packets fall back
           to the scalar path (query + hold). *)
        let n = Array.length batch in
        let m = ref 0 in
        let flush () =
          if !m > 0 then begin
            self#output_batch 0 (self#sub_batch batch !m);
            m := 0
          end
        in
        for i = 0 to n - 1 do
          let p = batch.(i) in
          if self#is_quarantined then begin
            flush ();
            self#drop ~reason:"quarantined element" p
          end
          else
            match
              let dst = (Packet.anno p).Packet.dst_ip in
              (self#entry dst).ae_eth
            with
            | Some eth -> (
                match
                  Ether.encap p ~dst:eth ~src:my_eth
                    ~ethertype:Ether.ethertype_ip
                with
                | () ->
                    encapsulated <- encapsulated + 1;
                    self#note_ok;
                    batch.(!m) <- p;
                    incr m
                | exception e when not (E.fatal e) ->
                    self#record_fault (Printexc.to_string e);
                    self#drop ~reason:"element fault" p)
            | None ->
                (* The held/query path transfers scalar packets of its
                   own, so flush the resolved run first to keep
                   downstream ordering intact. *)
                flush ();
                self#guard (self#push 0) p
            | exception e when not (E.fatal e) ->
                self#record_fault (Printexc.to_string e);
                self#drop ~reason:"element fault" p
        done;
        flush ()
      end

    method! write_handler handler value =
      let int_of v ~min err =
        match Args.parse_int v with
        | Some n when n >= min -> Ok n
        | _ -> Error (Printf.sprintf "%s: %s" name err)
      in
      match handler with
      | "capacity" ->
          Result.map (Aged_table.set_capacity table)
            (int_of value ~min:0 "capacity must be an integer >= 0")
      | "timeout_ms" ->
          Result.map
            (fun ms -> Aged_table.set_max_age_ns table (ms * 1_000_000))
            (int_of value ~min:0 "timeout_ms must be an integer >= 0")
      | "query_interval_ms" ->
          Result.map
            (fun ms -> query_interval_ns <- ms * 1_000_000)
            (int_of value ~min:0 "query_interval_ms must be an integer >= 0")
      | "pending" ->
          Result.map
            (fun n -> pending_cap <- n)
            (int_of value ~min:1 "pending must be an integer >= 1")
      | h -> Error (Printf.sprintf "%s: no write handler %S" name h)

    method! stats =
      (* "pending" is every packet currently held awaiting resolution:
         the testbed's conservation residual counts it, so it must be
         exact. *)
      let pending =
        Aged_table.fold table
          (fun _ e acc -> acc + Queue.length e.ae_pending)
          0
      in
      [
        ("queries", queries);
        ("suppressed", suppressed);
        ("responses", responses);
        ("encapsulated", encapsulated);
        ("cached", Aged_table.length table);
        ("evictions", Aged_table.evicted table);
        ("pending", pending);
      ]
  end

class arp_responder name =
  object (self)
    inherit E.base name
    val mutable entries : (Ipaddr.t * Ipaddr.t * Ethaddr.t) list = []
    val mutable replies = 0
    method class_name = "ARPResponder"

    method! configure config =
      let parse_entry arg =
        let parts = List.filter (( <> ) "") (String.split_on_char ' ' arg) in
        match parts with
        | [ prefix; eth ] -> (
            match (Ipaddr.parse_prefix prefix, Ethaddr.of_string eth) with
            | Some (addr, mask), Some eth -> Some (addr land mask, mask, eth)
            | _ -> None)
        | _ -> None
      in
      let parsed = List.map parse_entry (Args.split config) in
      if parsed = [] || List.exists Option.is_none parsed then
        Error "ARPResponder expects entries of the form \"IP[/MASK] ETH\""
      else begin
        entries <- List.filter_map Fun.id parsed;
        Ok ()
      end

    method private lookup ip =
      List.find_map
        (fun (addr, mask, eth) ->
          if ip land mask = addr then Some eth else None)
        entries

    method! push _ p =
      if
        Packet.length p >= Ether.header_length + Arp.packet_length
        && Headers.Ether.ethertype p = Ether.ethertype_arp
        && Arp.op ~off:Ether.header_length p = Arp.op_request
      then begin
        let target = Arp.target_ip ~off:Ether.header_length p in
        match self#lookup target with
        | Some eth ->
            let reply =
              Headers.Build.arp_reply ~src_eth:eth ~src_ip:target
                ~dst_eth:(Arp.sender_eth ~off:Ether.header_length p)
                ~dst_ip:(Arp.sender_ip ~off:Ether.header_length p)
            in
            replies <- replies + 1;
            self#spawn reply;
            self#output 0 reply;
            self#drop ~reason:"ARP request consumed" p
        | None -> self#drop ~reason:"not my address" p
      end
      else self#drop ~reason:"not an ARP request" p

    method! stats = [ ("replies", replies) ]
  end

let register () =
  def "ARPQuerier" ~ports:"2/1" ~processing:"h/h" ~flow:"xy/x" (fun n ->
      (new arp_querier n :> E.t));
  def "ARPResponder" (fun n -> (new arp_responder n :> E.t))
