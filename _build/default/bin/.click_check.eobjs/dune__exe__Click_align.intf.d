bin/click_align.mli:
