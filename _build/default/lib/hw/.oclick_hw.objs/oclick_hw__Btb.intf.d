lib/hw/btb.mli:
