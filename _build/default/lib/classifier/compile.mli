(** The fast-classifier back-end: decision trees compiled to closures.

    This is the run-time analogue of [click-fastclassifier]'s generated
    C++ (paper §4, Fig. 3b): instead of interpreting a tree laid out in
    memory — one array load, two field loads, and an indexed jump per node —
    classification runs straight-line specialized code with the offsets,
    masks, and constants baked in. Shared subtrees share closures, so code
    size matches the DAG size. *)

val compile : Tree.t -> read:(int -> int) -> int
(** [compile t] specializes [t] once; the returned function classifies with
    no per-node interpretation overhead. Partially apply it:
    [let fast = compile t in ... fast ~read]. *)

val compile_count : Tree.t -> read:(int -> int) -> int * int
(** Like {!compile} but the result also reports how many tests ran —
    used by the cost model to price specialized classification. *)

val compile_packet : Tree.t -> Oclick_packet.Packet.t -> int
(** [compile_packet t] is [compile t] pre-composed with a packet reader
    that zero-pads short packets, like {!Tree.classify}. *)
