(** The oclick packet abstraction.

    A packet is a window onto a byte buffer, with headroom before the window
    and tailroom after it — the same model as Click's [Packet]/Linux's
    [sk_buff]. Prepending a header ({!push}) or stripping one ({!pull})
    moves the window without copying, as long as room remains.

    All multi-byte accessors are big-endian (network order), and all offsets
    are relative to the start of the live data window. *)

(** Per-packet annotations, carried alongside the data. These mirror the
    Click annotations the standard IP router uses. *)
type anno = {
  mutable paint : int;  (** set by [Paint], read by [CheckPaint]; -1 unset *)
  mutable dst_ip : Ipaddr.t;
      (** destination-address annotation: set by [GetIPAddress], read by
          [LookupIPRoute] and [ARPQuerier] *)
  mutable fix_ip_src : bool;  (** set by [ICMPError], read by [FixIPSrc] *)
  mutable device : int;  (** input device number; -1 unset *)
  mutable timestamp_ns : int;
      (** simulated arrival time, integer nanoseconds — an immediate
          [int], so stamping a packet on the hot path never allocates a
          boxed float *)
  mutable link_type : link_type;
      (** link-layer addressing of the received frame, set by devices;
          read by [DropBroadcasts] *)
}

and link_type = To_host | Broadcast | Multicast | To_other

type t
(** A mutable packet. *)

val create : ?headroom:int -> ?tailroom:int -> int -> t
(** [create len] allocates a zero-filled packet of [len] data bytes.
    Default headroom is 34 bytes (like Click: room for link headers)
    and default tailroom 34 bytes. *)

val of_bytes : ?headroom:int -> ?tailroom:int -> bytes -> t
(** Packet whose data is a copy of the given bytes. *)

val of_string : ?headroom:int -> ?tailroom:int -> string -> t
val length : t -> int
val anno : t -> anno

val id : t -> int
(** Process-global serial number identifying this packet. Every packet
    that comes into existence — via {!create}, {!clone}, or
    {!Pool.alloc} (including buffer reuse) — gets a fresh id, so traces
    can follow one packet through the graph even across pool recycling. *)

val clone : t -> t
(** Deep copy: buffer and annotations are duplicated (the copy gets its
    own {!id}). *)

val headroom : t -> int
val tailroom : t -> int

(** {2 Window adjustment} *)

val push : t -> int -> unit
(** [push p n] prepends [n] uninitialized bytes (reallocating if headroom is
    short, again like Click). *)

val pull : t -> int -> unit
(** [pull p n] strips [n] bytes from the front. Raises [Invalid_argument]
    if [n > length p]. *)

val put : t -> int -> unit
(** [put p n] extends the data window by [n] zero bytes at the tail. *)

val take : t -> int -> unit
(** [take p n] trims [n] bytes from the tail. *)

(** {2 Data access} *)

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u16 : t -> int -> int
val set_u16 : t -> int -> int -> unit
val get_u32 : t -> int -> int
val set_u32 : t -> int -> int -> unit
val get_string : t -> pos:int -> len:int -> string
val set_string : t -> pos:int -> string -> unit
val to_string : t -> string
(** The live data window as a string. *)

val buffer : t -> bytes
(** The underlying buffer (shared, not a copy). *)

val data_offset : t -> int
(** Offset of the data window within {!buffer}. *)

val checksum : t -> pos:int -> len:int -> int
(** Internet checksum over a region of the data window. *)

(** {2 Alignment}

    Alignment is the data window's offset within the machine word, the
    property tracked by the [click-align] tool. *)

val alignment : t -> int
(** [data_offset] modulo 4. *)

val realign : t -> modulus:int -> offset:int -> unit
(** Move the data (copying within or into a fresh buffer) so that
    [data_offset mod modulus = offset]. Used by the [Align] element. *)

(** {2 Recycling pool}

    A free list of dead packets, so the forwarding hot path can reuse
    buffers instead of allocating a fresh one per packet and leaving the
    old one to the GC. Correctness relies on the copy-on-recycle policy:
    {!clone} deep-copies, so no live packet ever shares a buffer with a
    recycled one, and {!Pool.recycle} marks packets so double-recycling
    is a safe no-op.

    Pools are single-domain-owned: the free list is unsynchronized, so
    the sharded runtime gives every domain its own pool. A pool claims
    the first domain that operates on it and asserts (in debug builds)
    that every later {!Pool.alloc}/{!Pool.recycle} comes from that same
    domain — a recycled packet can never be resurrected concurrently by
    another domain. Use {!Pool.detach} to hand an idle pool over to a
    different domain. *)
module Pool : sig
  type packet = t
  type t

  type stats = {
    st_allocs : int;  (** fresh heap allocations (free list was empty) *)
    st_reuses : int;  (** allocations served from the free list *)
    st_recycles : int;  (** packets accepted back into the pool *)
    st_rejected : int;  (** recycles refused (pool full or double-recycle) *)
    st_free : int;  (** packets currently on the free list *)
  }

  val create : ?capacity:int -> unit -> t
  (** A pool holding at most [capacity] (default 1024) free packets. *)

  val alloc : t -> ?headroom:int -> ?tailroom:int -> int -> packet
  (** Like {!Packet.create}, but reuses a recycled packet when one is
      available (re-zeroing its data window and resetting annotations;
      growing the buffer if it is too small). *)

  val recycle : t -> packet -> unit
  (** Return a dead packet to the pool. The caller must not touch the
      packet afterwards. Recycling the same packet twice, or into a full
      pool, is a no-op counted in [st_rejected]. *)

  val detach : t -> unit
  (** Release the pool's domain claim so the next domain that touches it
      becomes the owner — for handing a (typically empty) pool to the
      domain that will run it. The pool must be quiescent: detaching
      does not make concurrent use safe. *)

  val stats : t -> stats
end
