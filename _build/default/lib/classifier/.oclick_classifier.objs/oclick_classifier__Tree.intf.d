lib/classifier/tree.mli: Oclick_packet
