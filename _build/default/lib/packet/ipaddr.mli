(** IPv4 addresses and prefixes.

    Addresses are stored as non-negative integers in host order
    ([0] .. [0xffff_ffff]); OCaml's native [int] is wide enough on all
    supported platforms. *)

type t = int
(** An IPv4 address, e.g. [0x0a000001] for 10.0.0.1. *)

val of_string : string -> t option
(** [of_string "10.0.0.1"] parses dotted-quad notation. *)

val of_string_exn : string -> t
(** Like {!of_string} but raises [Invalid_argument] on malformed input. *)

val to_string : t -> string
(** Dotted-quad rendering. *)

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] builds [a.b.c.d]; each octet must be in 0..255. *)

val netmask_of_prefix_length : int -> t
(** [netmask_of_prefix_length 24] is [255.255.255.0]. *)

val prefix_length_of_netmask : t -> int option
(** Inverse of {!netmask_of_prefix_length}; [None] for non-contiguous masks. *)

val in_subnet : t -> net:t -> mask:t -> bool
(** [in_subnet addr ~net ~mask] tests [addr land mask = net land mask]. *)

val broadcast : t
(** 255.255.255.255. *)

val is_multicast : t -> bool
(** Class D test (224.0.0.0/4). *)

val parse_prefix : string -> (t * t) option
(** Parses ["10.0.0.0/8"] or ["10.0.0.0/255.0.0.0"] as (address, mask);
    a bare address parses with an all-ones mask. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
