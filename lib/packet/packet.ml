type anno = {
  mutable paint : int;
  mutable dst_ip : Ipaddr.t;
  mutable fix_ip_src : bool;
  mutable device : int;
  mutable timestamp_ns : int;
  mutable link_type : link_type;
}

and link_type = To_host | Broadcast | Multicast | To_other

type t = {
  mutable buf : bytes;
  mutable head : int;
  mutable len : int;
  mutable in_pool : bool;
  mutable id : int;
  anno : anno;
}

(* Packet identities are process-global serial numbers: every packet that
   comes into existence — created, cloned, or reused from a pool — gets a
   fresh one, so a trace can follow an individual packet even when its
   buffer is recycled. The counter is atomic so packets born on different
   domains (the sharded datapath) still get distinct identities. *)
let id_counter = Atomic.make 0

let fresh_id () = Atomic.fetch_and_add id_counter 1 + 1

let fresh_anno () =
  {
    paint = -1;
    dst_ip = 0;
    fix_ip_src = false;
    device = -1;
    timestamp_ns = 0;
    link_type = To_host;
  }

let default_headroom = 34

let create ?(headroom = default_headroom) ?(tailroom = default_headroom) len =
  if len < 0 || headroom < 0 || tailroom < 0 then invalid_arg "Packet.create";
  {
    buf = Bytes.make (headroom + len + tailroom) '\000';
    head = headroom;
    len;
    in_pool = false;
    id = fresh_id ();
    anno = fresh_anno ();
  }

let of_bytes ?headroom ?tailroom data =
  let p = create ?headroom ?tailroom (Bytes.length data) in
  Bytes.blit data 0 p.buf p.head (Bytes.length data);
  p

let of_string ?headroom ?tailroom s =
  of_bytes ?headroom ?tailroom (Bytes.of_string s)

let length p = p.len
let anno p = p.anno
let id p = p.id

let clone p =
  {
    buf = Bytes.copy p.buf;
    head = p.head;
    len = p.len;
    in_pool = false;
    id = fresh_id ();
    anno = { p.anno with paint = p.anno.paint };
  }

let headroom p = p.head
let tailroom p = Bytes.length p.buf - p.head - p.len

let grow p ~extra_head ~extra_tail =
  (* Reallocate, preserving the data window and adding room at both ends. *)
  let buf = Bytes.make (extra_head + p.len + extra_tail) '\000' in
  Bytes.blit p.buf p.head buf extra_head p.len;
  p.buf <- buf;
  p.head <- extra_head

let push p n =
  if n < 0 then invalid_arg "Packet.push";
  if n > p.head then grow p ~extra_head:(n + default_headroom) ~extra_tail:(tailroom p);
  p.head <- p.head - n;
  p.len <- p.len + n

let pull p n =
  if n < 0 || n > p.len then invalid_arg "Packet.pull";
  p.head <- p.head + n;
  p.len <- p.len - n

let put p n =
  if n < 0 then invalid_arg "Packet.put";
  if n > tailroom p then grow p ~extra_head:p.head ~extra_tail:(n + default_headroom);
  Bytes.fill p.buf (p.head + p.len) n '\000';
  p.len <- p.len + n

let take p n =
  if n < 0 || n > p.len then invalid_arg "Packet.take";
  p.len <- p.len - n

let check p pos width =
  if pos < 0 || pos + width > p.len then
    invalid_arg
      (Printf.sprintf "Packet: access at %d width %d beyond length %d" pos
         width p.len)

let get_u8 p pos =
  check p pos 1;
  Char.code (Bytes.get p.buf (p.head + pos))

let set_u8 p pos v =
  check p pos 1;
  Bytes.set p.buf (p.head + pos) (Char.chr (v land 0xff))

let get_u16 p pos =
  check p pos 2;
  let b = p.buf and o = p.head + pos in
  (Char.code (Bytes.get b o) lsl 8) lor Char.code (Bytes.get b (o + 1))

let set_u16 p pos v =
  check p pos 2;
  let b = p.buf and o = p.head + pos in
  Bytes.set b o (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (o + 1) (Char.chr (v land 0xff))

let get_u32 p pos =
  check p pos 4;
  let b = p.buf and o = p.head + pos in
  (Char.code (Bytes.get b o) lsl 24)
  lor (Char.code (Bytes.get b (o + 1)) lsl 16)
  lor (Char.code (Bytes.get b (o + 2)) lsl 8)
  lor Char.code (Bytes.get b (o + 3))

let set_u32 p pos v =
  check p pos 4;
  let b = p.buf and o = p.head + pos in
  Bytes.set b o (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (o + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (o + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (o + 3) (Char.chr (v land 0xff))

let get_string p ~pos ~len =
  check p pos len;
  Bytes.sub_string p.buf (p.head + pos) len

let set_string p ~pos s =
  check p pos (String.length s);
  Bytes.blit_string s 0 p.buf (p.head + pos) (String.length s)

let to_string p = Bytes.sub_string p.buf p.head p.len
let buffer p = p.buf
let data_offset p = p.head

let checksum p ~pos ~len =
  check p pos len;
  Checksum.checksum p.buf ~pos:(p.head + pos) ~len

let alignment p = p.head mod 4

let realign p ~modulus ~offset =
  if modulus <= 0 || offset < 0 || offset >= modulus then
    invalid_arg "Packet.realign";
  if p.head mod modulus <> offset then begin
    (* Copy into a fresh buffer whose head satisfies the constraint and
       keeps the default headroom available. *)
    let head = ((default_headroom / modulus) + 1) * modulus + offset in
    let buf = Bytes.make (head + p.len + default_headroom) '\000' in
    Bytes.blit p.buf p.head buf head p.len;
    p.buf <- buf;
    p.head <- head
  end

module Pool = struct
  type packet = t

  let fresh_packet = create

  type t = {
    free : packet Stack.t;
    capacity : int;
    mutable owner : int;  (* owning domain id; -1 = unclaimed *)
    mutable allocs : int;
    mutable reuses : int;
    mutable recycles : int;
    mutable rejected : int;
  }

  type stats = {
    st_allocs : int;
    st_reuses : int;
    st_recycles : int;
    st_rejected : int;
    st_free : int;
  }

  (* A pool is single-domain-owned: the free list is a plain Stack and
     [alloc]/[recycle] mutate it without synchronization, so a packet
     recycled by one domain must never be resurrected by another. The
     pool claims the domain that first touches it (normally its
     creator); [detach] hands an untouched pool to whichever domain uses
     it next. The claim is checked with [assert] on every hot-path
     operation, so debug builds catch cross-domain aliasing at the exact
     faulty call while release builds compiled with [-noassert] pay
     nothing. *)
  let create ?(capacity = 1024) () =
    if capacity < 0 then invalid_arg "Packet.Pool.create";
    { free = Stack.create (); capacity;
      owner = (Domain.self () :> int);
      allocs = 0; reuses = 0; recycles = 0; rejected = 0 }

  let detach pool = pool.owner <- -1

  let owned_by_caller pool =
    let self = (Domain.self () :> int) in
    if pool.owner = -1 then pool.owner <- self;
    pool.owner = self

  let reset_anno a =
    a.paint <- -1;
    a.dst_ip <- 0;
    a.fix_ip_src <- false;
    a.device <- -1;
    a.timestamp_ns <- 0;
    a.link_type <- To_host

  (* Copy-on-recycle policy: [clone] always deep-copies the buffer, so a
     recycled packet's buffer is never shared with a live packet and can
     be reused in place. Only the data window is re-zeroed on reuse —
     headroom/tailroom are scratch space whose contents [push]/[put]
     manage themselves, exactly as for a fresh [create]. *)
  let alloc pool ?(headroom = default_headroom) ?(tailroom = default_headroom)
      len =
    if len < 0 || headroom < 0 || tailroom < 0 then
      invalid_arg "Packet.Pool.alloc";
    assert (owned_by_caller pool);
    match Stack.pop_opt pool.free with
    | None ->
        pool.allocs <- pool.allocs + 1;
        fresh_packet ~headroom ~tailroom len
    | Some p ->
        let need = headroom + len + tailroom in
        if Bytes.length p.buf < need then p.buf <- Bytes.make need '\000'
        else Bytes.fill p.buf headroom len '\000';
        p.head <- headroom;
        p.len <- len;
        p.in_pool <- false;
        p.id <- fresh_id ();
        reset_anno p.anno;
        pool.reuses <- pool.reuses + 1;
        p

  let recycle pool p =
    assert (owned_by_caller pool);
    (* Guard against double-recycle: a packet already on the free list is
       left alone, so recycling from both a drop hook and a transmit path
       can never corrupt the pool. *)
    if (not p.in_pool) && Stack.length pool.free < pool.capacity then begin
      p.in_pool <- true;
      pool.recycles <- pool.recycles + 1;
      Stack.push p pool.free
    end
    else pool.rejected <- pool.rejected + 1

  let stats pool =
    {
      st_allocs = pool.allocs;
      st_reuses = pool.reuses;
      st_recycles = pool.recycles;
      st_rejected = pool.rejected;
      st_free = Stack.length pool.free;
    }
end
