(* Zero-copy memory benchmark: wall clock plus minor-heap allocation per
   forwarded packet on the Fig. 8 forwarding path.

   Three variants of the same IP-router rig as bench/batch.ml:

   - scalar:      batch 1, fresh [Packet.create] per packet — the
                  unoptimized baseline;
   - batch-heap:  batch 32 + recycling pool with the arena disabled
                  ([~slab:false]) — the pre-arena pooled representation
                  (GC-managed [Bytes] buffers, free-list reuse);
   - batch-slab:  batch 32 + arena-backed pool — the zero-copy path:
                  off-heap slab payloads, descriptor-only recycling.

   Besides throughput, each variant reports [Gc.minor_words] consumed per
   forwarded packet over the measured window. On the slab path the packet
   payloads never touch the minor heap and recycling pushes descriptor
   indices, so the figure collapses to scheduler/driver bookkeeping —
   this is the "near-zero minor-heap words per forwarded pooled packet"
   acceptance number, enforced by @zerocopy-smoke via
   test/validate_zerocopy_json.ml. *)

module Driver = Oclick_runtime.Driver
module Netdevice = Oclick_runtime.Netdevice
module Packet = Oclick_packet.Packet
module Pool = Oclick_packet.Packet.Pool
module Headers = Oclick_packet.Headers
module Ethaddr = Oclick_packet.Ethaddr
module Ipaddr = Oclick_packet.Ipaddr

let n_ifaces = 2
let burst = 256
let batch_size = 32

type pool_kind = No_pool | Heap_pool | Slab_pool

type rig = {
  rg_driver : Driver.t;
  rg_devs : Netdevice.queue_device array;
  rg_pool : Pool.t option;
}

let make_rig ~batch ~kind =
  let graph = Common.base_graph n_ifaces in
  let devs =
    Array.init n_ifaces (fun i ->
        new Netdevice.queue_device (Printf.sprintf "eth%d" i) ())
  in
  let devices =
    Array.to_list (Array.map (fun d -> (d :> Netdevice.t)) devs)
  in
  let pool =
    match kind with
    | No_pool -> None
    | Heap_pool -> Some (Pool.create ~capacity:4096 ~slab:false ())
    | Slab_pool -> Some (Pool.create ~capacity:4096 ())
  in
  match Driver.instantiate ~devices ~batch ?pool graph with
  | Ok d -> { rg_driver = d; rg_devs = devs; rg_pool = pool }
  | Error e -> failwith ("membench: " ^ e)

let template =
  Headers.Build.udp
    ~src_eth:(Ethaddr.of_string_exn "00:00:c0:aa:00:02")
    ~dst_eth:(Ethaddr.of_string_exn "00:00:c0:00:00:01")
    ~src_ip:(Ipaddr.of_octets 10 0 0 2)
    ~dst_ip:(Ipaddr.of_octets 10 0 1 2)
    ~ttl:64 ()

let answer_arp (dev : Netdevice.queue_device) host_eth =
  match dev#collect with
  | Some q when Headers.Ether.ethertype q = 0x806 ->
      dev#inject
        (Headers.Build.arp_reply ~src_eth:host_eth
           ~src_ip:(Headers.Arp.target_ip ~off:14 q)
           ~dst_eth:(Headers.Arp.sender_eth ~off:14 q)
           ~dst_ip:(Headers.Arp.sender_ip ~off:14 q))
  | Some _ -> failwith "membench: expected an ARP query"
  | None -> failwith "membench: no ARP query emitted"

let prime rig =
  rig.rg_devs.(0)#inject (Packet.clone template);
  ignore (Driver.run_until_idle rig.rg_driver);
  answer_arp rig.rg_devs.(1) (Ethaddr.of_string_exn "00:00:c0:bb:01:02");
  ignore (Driver.run_until_idle rig.rg_driver);
  let rec drain n =
    match rig.rg_devs.(1)#collect with Some _ -> drain (n + 1) | None -> n
  in
  if drain 0 < 1 then failwith "membench: priming forward failed"

(* Count how many forwarded frames were carried off-heap (sampled at
   collection, before recycling) — the slab variant must be ~100%. The
   drain goes through the device's batched [collect_into] (like a real
   polling peer), so the measured window has no option box per drained
   frame. *)
let drain_buf = Array.make burst (Packet.create ~headroom:0 ~tailroom:0 0)

let run_burst rig off_heap =
  let len = Packet.length template in
  for _ = 1 to burst do
    let p =
      match rig.rg_pool with
      | Some pool -> Pool.alloc pool len
      | None -> Packet.create len
    in
    Packet.blit ~src:template ~src_pos:0 ~dst:p ~dst_pos:0 ~len;
    rig.rg_devs.(0)#inject p
  done;
  ignore (Driver.run_until_idle rig.rg_driver);
  let rec drain n =
    let got = rig.rg_devs.(1)#collect_into drain_buf in
    if got = 0 then n
    else begin
      for i = 0 to got - 1 do
        let p = drain_buf.(i) in
        if Packet.is_off_heap p then incr off_heap;
        match rig.rg_pool with
        | Some pool -> ignore (Pool.recycle pool p)
        | None -> ()
      done;
      drain (n + got)
    end
  in
  drain 0

type result = {
  r_name : string;
  r_batch : int;
  r_kind : pool_kind;
  r_offered : int;
  r_forwarded : int;
  r_seconds : float;
  r_pps : float;
  r_words_per_pkt : float;
  r_off_heap_frac : float;
}

(* The packet-layer steady state in isolation: alloc from the pool, fill
   the frame, read it back, checksum the header, recycle — the complete
   per-packet lifecycle this PR rebuilt, with no driver or element
   scheduling around it. On the slab pool every step is descriptor
   bookkeeping over off-heap bytes, so the figure must be exactly zero;
   the end-to-end variants add the interpreter's option/queue-cell
   boxing on top, which is scheduler cost, not packet-representation
   cost. *)
let packet_layer_words ~kind ~packets =
  let pool =
    match kind with
    | Heap_pool -> Pool.create ~capacity:64 ~slab:false ()
    | _ -> Pool.create ~capacity:64 ()
  in
  let len = Packet.length template in
  let step () =
    let p = Pool.alloc pool len in
    Packet.blit ~src:template ~src_pos:0 ~dst:p ~dst_pos:0 ~len;
    ignore (Packet.get_u32 p 26);
    Packet.set_u16 p 24 0;
    ignore (Packet.ones_complement_sum p ~pos:14 ~len:20);
    ignore (Pool.recycle pool p)
  in
  for _ = 1 to 1_000 do step () done;
  let w0 = Gc.minor_words () in
  for _ = 1 to packets do step () done;
  (Gc.minor_words () -. w0) /. float_of_int packets

let reps = 3

let run_mode ~name ~batch ~kind ~packets =
  let rig = make_rig ~batch ~kind in
  prime rig;
  let bursts = max 1 (packets / burst) in
  let off_heap = ref 0 in
  (* Warmup fills the pool, so the measured window sees the recycling
     steady state rather than cold allocations. *)
  for _ = 1 to max 1 (bursts / 10) do
    ignore (run_burst rig off_heap)
  done;
  off_heap := 0;
  (* Wall clock is best-of-[reps] windows (Common.best_of_windows;
     scheduling noise dominates short smoke windows); allocation is
     summed across every window — it is deterministic per packet, and
     summing keeps the figure an average over all forwarded traffic. *)
  let words = ref 0.0 in
  let w =
    Common.best_of_windows ~reps (fun () ->
        let w0 = Gc.minor_words () in
        let fwd = ref 0 in
        for _ = 1 to bursts do
          fwd := !fwd + run_burst rig off_heap
        done;
        words := !words +. (Gc.minor_words () -. w0);
        !fwd)
  in
  let forwarded = w.Common.w_total_forwarded in
  let offered = reps * bursts * burst in
  {
    r_name = name;
    r_batch = batch;
    r_kind = kind;
    r_offered = offered;
    r_forwarded = forwarded;
    r_seconds = w.Common.w_seconds;
    r_pps = w.Common.w_pps;
    r_words_per_pkt = !words /. float_of_int (max 1 forwarded);
    r_off_heap_frac = float_of_int !off_heap /. float_of_int (max 1 forwarded);
  }

let variant_json r =
  Common.J_obj
    [
      ("name", Common.J_string r.r_name);
      ("batch", Common.J_int r.r_batch);
      ("pool", Common.J_bool (r.r_kind <> No_pool));
      ("slab", Common.J_bool (r.r_kind = Slab_pool));
      ("offered", Common.J_int r.r_offered);
      ("forwarded", Common.J_int r.r_forwarded);
      ("seconds", Common.J_float r.r_seconds);
      ("pps", Common.J_float r.r_pps);
      ("minor_words_per_packet", Common.J_float r.r_words_per_pkt);
      ("off_heap_fraction", Common.J_float r.r_off_heap_frac);
    ]

let print_variant r =
  Printf.printf "%-26s %12d %12.1f %14.1f %9.0f%%\n" r.r_name r.r_forwarded
    (Common.kpps r.r_pps) r.r_words_per_pkt (100.0 *. r.r_off_heap_frac)

let run () =
  Common.section
    "zerocopy: off-heap packet buffers — wall clock and minor-heap words";
  let packets = if !Common.smoke then 2_048 else 262_144 in
  Printf.printf
    "IP router (%d interfaces), one UDP flow, %d packets per variant\n\n"
    n_ifaces packets;
  let scalar = run_mode ~name:"scalar" ~batch:1 ~kind:No_pool ~packets in
  let heap =
    run_mode
      ~name:(Printf.sprintf "batch %d + heap pool" batch_size)
      ~batch:batch_size ~kind:Heap_pool ~packets
  in
  let slab =
    run_mode
      ~name:(Printf.sprintf "batch %d + slab pool" batch_size)
      ~batch:batch_size ~kind:Slab_pool ~packets
  in
  let layer_slab = packet_layer_words ~kind:Slab_pool ~packets in
  let layer_heap = packet_layer_words ~kind:Heap_pool ~packets in
  let speedup_vs_scalar = slab.r_pps /. scalar.r_pps in
  let speedup_slab_vs_heap = slab.r_pps /. heap.r_pps in
  Printf.printf "%-26s %12s %12s %14s %10s\n" "variant" "forwarded" "kpkts/s"
    "minor w/pkt" "off-heap";
  print_variant scalar;
  print_variant heap;
  print_variant slab;
  Printf.printf
    "\nspeedup: slab pool %.2fx vs scalar, %.2fx vs heap pool; slab minor \
     words/pkt %.1f (heap pool %.1f, scalar %.1f)\n"
    speedup_vs_scalar speedup_slab_vs_heap slab.r_words_per_pkt
    heap.r_words_per_pkt scalar.r_words_per_pkt;
  Printf.printf
    "packet-layer steady state (alloc/fill/read/checksum/recycle): slab \
     %.2f words/pkt, heap %.2f words/pkt\n"
    layer_slab layer_heap;
  if slab.r_off_heap_frac < 1.0 then
    Printf.printf "warning: %.1f%% of slab-variant frames fell back to heap\n"
      (100.0 *. (1.0 -. slab.r_off_heap_frac));
  Common.write_json ~section:"zerocopy"
    (Common.J_obj
       [
         ("section", Common.J_string "zerocopy");
         ("graph", Common.J_string "ip-router");
         ("interfaces", Common.J_int n_ifaces);
         ("burst", Common.J_int burst);
         ("smoke", Common.J_bool !Common.smoke);
         ( "variants",
           Common.J_list [ variant_json scalar; variant_json heap; variant_json slab ]
         );
         ("speedup_vs_scalar", Common.J_float speedup_vs_scalar);
         ("speedup_slab_vs_heap", Common.J_float speedup_slab_vs_heap);
         ("slab_minor_words_per_packet", Common.J_float slab.r_words_per_pkt);
         ("packet_layer_words_slab", Common.J_float layer_slab);
         ("packet_layer_words_heap", Common.J_float layer_heap);
       ])
