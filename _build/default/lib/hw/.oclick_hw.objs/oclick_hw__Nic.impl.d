lib/hw/nic.ml: Engine Oclick_packet Pci Platform Queue
