(* click-undead: dead-code elimination for router configurations. *)

open Cmdliner

let run input =
  let source = Tool_common.read_input input in
  let router = Tool_common.parse_router source in
  match Oclick_optim.Undead.run router with
  | Error e -> Tool_common.die "%s" e
  | Ok (router, removed) ->
      Printf.eprintf "click-undead: %d elements removed\n" removed;
      Tool_common.output_router router

let () =
  Tool_common.run_tool "click-undead"
    "Remove dead elements from a configuration."
    Term.(const run $ Tool_common.input_arg)
