type token =
  | Ident of string
  | Colon_colon
  | Arrow
  | Comma
  | Semi
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Bar
  | Eof

type t = {
  src : string;
  mutable pos : int;
  mutable lnum : int;
  mutable lookahead : token option;
}

exception Error of string * int

let create src = { src; pos = 0; lnum = 1; lookahead = None }
let line lx = lx.lnum
let at_end lx = lx.pos >= String.length lx.src

let cur lx = lx.src.[lx.pos]

let advance lx =
  if not (at_end lx) then begin
    if cur lx = '\n' then lx.lnum <- lx.lnum + 1;
    lx.pos <- lx.pos + 1
  end

let is_ident_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '@' | '/' | '.' | '$' -> true
  | _ -> false

(* Skips whitespace and all three comment forms: //, /* */ and #. *)
let rec skip_blank lx =
  if at_end lx then ()
  else
    match cur lx with
    | ' ' | '\t' | '\r' | '\n' ->
        advance lx;
        skip_blank lx
    | '#' ->
        while (not (at_end lx)) && cur lx <> '\n' do
          advance lx
        done;
        skip_blank lx
    | '/' when lx.pos + 1 < String.length lx.src -> (
        match lx.src.[lx.pos + 1] with
        | '/' ->
            while (not (at_end lx)) && cur lx <> '\n' do
              advance lx
            done;
            skip_blank lx
        | '*' ->
            advance lx;
            advance lx;
            let rec scan () =
              if at_end lx then raise (Error ("unterminated comment", lx.lnum))
              else if
                cur lx = '*'
                && lx.pos + 1 < String.length lx.src
                && lx.src.[lx.pos + 1] = '/'
              then begin
                advance lx;
                advance lx
              end
              else begin
                advance lx;
                scan ()
              end
            in
            scan ();
            skip_blank lx
        | _ -> ())
    | _ -> ()

let scan_token lx =
  skip_blank lx;
  if at_end lx then Eof
  else
    match cur lx with
    | ':' ->
        advance lx;
        if (not (at_end lx)) && cur lx = ':' then begin
          advance lx;
          Colon_colon
        end
        else raise (Error ("expected '::'", lx.lnum))
    | '-' ->
        advance lx;
        if (not (at_end lx)) && cur lx = '>' then begin
          advance lx;
          Arrow
        end
        else raise (Error ("expected '->'", lx.lnum))
    | ',' ->
        advance lx;
        Comma
    | ';' ->
        advance lx;
        Semi
    | '{' ->
        advance lx;
        Lbrace
    | '}' ->
        advance lx;
        Rbrace
    | '[' ->
        advance lx;
        Lbracket
    | ']' ->
        advance lx;
        Rbracket
    | '(' ->
        advance lx;
        Lparen
    | ')' ->
        advance lx;
        Rparen
    | '|' ->
        advance lx;
        Bar
    | c when is_ident_char c ->
        let start = lx.pos in
        while (not (at_end lx)) && is_ident_char (cur lx) do
          advance lx
        done;
        Ident (String.sub lx.src start (lx.pos - start))
    | c -> raise (Error (Printf.sprintf "unexpected character %C" c, lx.lnum))

let next lx =
  match lx.lookahead with
  | Some tok ->
      lx.lookahead <- None;
      tok
  | None -> scan_token lx

let peek lx =
  match lx.lookahead with
  | Some tok -> tok
  | None ->
      let tok = scan_token lx in
      lx.lookahead <- Some tok;
      tok

let trim = String.trim

let read_config lx =
  assert (lx.lookahead = None);
  let buf = Buffer.create 32 in
  let depth = ref 0 in
  let rec scan () =
    if at_end lx then raise (Error ("unterminated configuration", lx.lnum))
    else
      match cur lx with
      | ')' when !depth = 0 -> () (* leave Rparen for the parser *)
      | ')' ->
          decr depth;
          Buffer.add_char buf ')';
          advance lx;
          scan ()
      | '(' ->
          incr depth;
          Buffer.add_char buf '(';
          advance lx;
          scan ()
      | '"' ->
          Buffer.add_char buf '"';
          advance lx;
          let rec str () =
            if at_end lx then
              raise (Error ("unterminated string in configuration", lx.lnum))
            else
              match cur lx with
              | '"' ->
                  Buffer.add_char buf '"';
                  advance lx
              | '\\' ->
                  Buffer.add_char buf '\\';
                  advance lx;
                  if not (at_end lx) then begin
                    Buffer.add_char buf (cur lx);
                    advance lx
                  end;
                  str ()
              | c ->
                  Buffer.add_char buf c;
                  advance lx;
                  str ()
          in
          str ();
          scan ()
      | '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '*'
        ->
          skip_blank lx;
          Buffer.add_char buf ' ';
          scan ()
      | '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/'
        ->
          skip_blank lx;
          Buffer.add_char buf ' ';
          scan ()
      | c ->
          Buffer.add_char buf c;
          advance lx;
          scan ()
  in
  scan ();
  trim (Buffer.contents buf)

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Colon_colon -> "'::'"
  | Arrow -> "'->'"
  | Comma -> "','"
  | Semi -> "';'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Bar -> "'|'"
  | Eof -> "end of input"
