(** Optimization pipelines: the tool chains evaluated in the paper's §8.

    Tools compose like Unix filters (paper §5.4); each function here is one
    stage, and {!optimize} runs the combinations named in Figure 9:
    "FC" ([click-fastclassifier]), "DV" ([click-devirtualize]),
    "XF" ([click-xform] with the combination-element patterns), "All"
    (XF then FC then DV — devirtualize last, since it cements the graph,
    §6.1), and "MR" (ARP elimination through
    [click-combine]/[click-xform]/[click-uncombine], §7.2). *)

type t = Oclick_graph.Router.t

val fastclassify : t -> t
val devirtualize : ?exclude:string list -> t -> t
val transform : t -> t
(** [click-xform] with {!Oclick_optim.Patterns.combos}. *)

val undead : t -> t

val eliminate_arp :
  router:t -> hosts:(string * t) list -> links:Oclick_optim.Combine.link list ->
  t
(** combine → ARP-elimination xform → uncombine the router (named
    ["router"] in the combination). *)

(** The Figure 9 configurations. [Mr_all] is "MR+All". *)
type variant = Base | Fc | Dv | Xf | All | Mr | Mr_all

val variant_name : variant -> string
val variants : variant list

val optimize :
  ?hosts:(string * t) list ->
  ?links:Oclick_optim.Combine.link list ->
  variant ->
  t ->
  t
(** Applies the variant's tool chain. [Mr] and [Mr_all] require [hosts]
    and [links]. Raises [Failure] if a stage reports an error. *)
