  $ cat > gw.click <<'CONF'
  > elementclass Gateway { $ip |
  >   input -> Strip(14) -> CheckIPHeader() -> GetIPAddress(16) -> output;
  > }
  > src :: InfiniteSource(LIMIT 1);
  > gw :: Gateway(10.0.0.1);
  > rt :: LookupIPRoute(10.0.0.0/8 0);
  > src -> gw -> rt;
  > rt [0] -> Discard;
  > CONF
  $ click-check gw.click
  $ click-flatten gw.click
  $ click-flatten gw.click | click-pretty --dot | head -4
  $ echo 'x :: Zorp; Idle -> x -> Discard;' | click-check
  $ cat > paint.click <<'CONF'
  > elementclass CollapsePattern { $a, $b |
  >   input -> Paint($a) -> Paint($b) -> output;
  > }
  > elementclass CollapseReplacement { $a, $b |
  >   input -> p :: Paint($b) -> output;
  > }
  > CONF
  $ echo 'InfiniteSource(LIMIT 1) -> Paint(1) -> Paint(2) -> Paint(3) -> Discard;' \
  >   | click-xform -p paint.click 2>xform.err
  $ cat xform.err
  $ cat > cls.click <<'CONF'
  > InfiniteSource(LIMIT 1) -> c :: Classifier(12/0800, -);
  > c [0] -> Discard;
  > c [1] -> Discard;
  > CONF
  $ click-fastclassifier cls.click 2>/dev/null | head -5
  $ click-fastclassifier cls.click 2>/dev/null | grep 'c ::'
  $ echo 'InfiniteSource(LIMIT 1) -> a :: Counter -> Discard;' | click-devirtualize 2>/dev/null | grep 'a ::'
  $ cat > dead.click <<'CONF'
  > InfiniteSource(LIMIT 1) -> sw :: StaticSwitch(1);
  > sw [0] -> dead :: Counter -> Discard;
  > sw [1] -> live :: Counter -> Discard;
  > CONF
  $ click-undead dead.click 2>undead.err
  $ cat undead.err
  $ echo 'InfiniteSource(LIMIT 1) -> ck :: CheckIPHeader() -> Discard;' | click-align 2>&1 >/dev/null
  $ click-mkmindriver --list gw.click
  $ click-flatten gw.click | click-xform --combos 2>/dev/null | click-devirtualize 2>/dev/null | click-check
  $ cat > run.click <<'CONF'
  > InfiniteSource(LIMIT 5) -> c :: Classifier(12/0800, -);
  > c [0] -> Discard;
  > c [1] -> x :: Counter -> Discard;
  > CONF
  $ click-fastclassifier run.click 2>/dev/null | click-devirtualize 2>/dev/null > opt.click
  $ oclick-run --rounds 10 --stats opt.click | grep 'x ('
  $ echo 'InfiniteSource(LIMIT 5) -> c :: Counter -> Discard;' | oclick-run --rounds 10 --stats
  $ echo 'src :: InfiniteSource(LIMIT 50) -> c :: Counter -> Discard;' \
  >   | oclick-run --rounds 20 --write src.active=false --read c.packets
  $ echo 'src :: InfiniteSource(LIMIT 50) -> c :: Counter -> Discard;' \
  >   | oclick-run --rounds 20 --read c.packets --read c.class
  $ printf '\000\001garbage\377' > garbage.bin
  $ : > empty.click
  $ echo 'Idle -> [5] Discard;' > badport.click
  $ click-check garbage.bin
  $ click-check empty.click
  $ for t in click-check click-flatten click-pretty click-xform \
  >   click-fastclassifier click-devirtualize click-undead click-align \
  >   click-mkmindriver oclick-run; do
  >   $t garbage.bin >probe.out 2>&1 && echo "$t accepted garbage"
  >   echo "$t: exit $? lines $(wc -l < probe.out)"
  > done
  $ for t in click-check click-flatten click-pretty click-xform \
  >   click-fastclassifier click-devirtualize click-undead click-align \
  >   click-mkmindriver oclick-run; do
  >   $t empty.click >probe.out 2>&1 && echo "$t accepted empty input"
  >   echo "$t: exit $? lines $(wc -l < probe.out)"
  > done
  $ for t in click-flatten click-pretty click-xform click-fastclassifier \
  >   click-devirtualize click-undead click-align click-mkmindriver \
  >   oclick-run; do
  >   $t badport.click >probe.out 2>&1 && echo "$t accepted bad ports"
  >   echo "$t: exit $? lines $(wc -l < probe.out)"
  > done
  $ click-devirtualize badport.click
  $ click-check badport.click
  $ click-combine -r a=garbage.bin
  $ click-combine -r a=empty.click
  $ click-combine -r a=badport.click
  $ click-uncombine -n a garbage.bin
  $ click-uncombine -n a empty.click
  $ click-uncombine -n a badport.click
  $ echo 'InfiniteSource(LIMIT 5) -> Discard;' | oclick-run --fault 'corrupt=banana'
  $ echo 'InfiniteSource(LIMIT 200) -> c :: Counter -> Discard;' \
  >   | oclick-run --rounds 300 --fault 'corrupt=0.05,truncate=0.05' --fault-seed 9
