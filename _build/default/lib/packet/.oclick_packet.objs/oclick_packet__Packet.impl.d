lib/packet/packet.ml: Bytes Char Checksum Ipaddr Printf String
