(* click-pretty: pretty-print a configuration, as text or HTML. *)

open Cmdliner

let run html dot input =
  let source = Tool_common.read_input input in
  (* Validate against the registry first: garbage, empty input, and
     out-of-range ports all die with a one-line diagnostic. *)
  let (_ : Oclick_graph.Router.t) = Tool_common.parse_router source in
  match Oclick_lang.Parser.parse source with
  | Error e ->
      prerr_endline e;
      exit 1
  | Ok ast ->
      if html then print_string (Oclick_lang.Printer.html_of_config ast)
      else if dot then print_string (Oclick_lang.Printer.dot_of_config ast)
      else print_string (Oclick_lang.Printer.to_string ast)

let html_arg =
  Arg.(value & flag & info [ "html" ] ~doc:"Emit an HTML page.")

let dot_arg =
  Arg.(value & flag & info [ "dot" ] ~doc:"Emit a Graphviz graph.")

let () =
  Tool_common.run_tool "click-pretty"
    "Pretty-print a Click configuration."
    Term.(const run $ html_arg $ dot_arg $ Tool_common.input_arg)
