lib/runtime/registry.mli: Element Oclick_graph
