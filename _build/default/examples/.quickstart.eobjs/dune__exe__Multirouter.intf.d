examples/multirouter.mli:
