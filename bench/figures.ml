(* Reproductions of every table and figure in the paper's evaluation
   (§4, §8). Each function prints the rows/series the paper reports,
   alongside the paper's published values for comparison. *)

open Common
module Testbed = Oclick_hw.Testbed
module Platform = Oclick_hw.Platform
module Tree = Oclick_classifier.Tree
module Hooks = Oclick_runtime.Hooks
module Cost_model = Oclick_hw.Cost_model

(* --- §3: virtual call costs (the Figure 2 discussion) ------------------- *)

let dispatch () =
  section "Section 3: packet-transfer dispatch costs (cycle model)";
  let cm = Cost_model.create () in
  let tr target =
    {
      Hooks.tr_src_idx = 0;
      tr_src_class = "ARPQuerier";
      tr_src_port = 0;
      tr_dst_idx = target;
      tr_dst_class = "Queue";
      tr_dst_port = 0;
      tr_direct = false;
      tr_pull = false;
    }
  in
  let cold = Cost_model.transfer_cycles cm (tr 1) in
  let warm = Cost_model.transfer_cycles cm (tr 1) in
  row "predicted virtual call:    %3d cycles   (paper: ~7, like a conventional call)\n" warm;
  row "mispredicted virtual call: %3d cycles   (paper: dozens)\n" cold;
  (* Figure 2: two same-class elements alternating targets through one
     shared call site always mispredict. *)
  let mispredicts = ref 0 in
  for _ = 1 to 1000 do
    List.iter
      (fun target ->
        if Cost_model.transfer_cycles cm (tr target) > 10 then incr mispredicts)
      [ 1; 2 ]
  done;
  row "Figure 2 alternation: %d/2000 transfers mispredicted (paper: the \
       predictor is always wrong)\n"
    !mispredicts

(* --- §4: the 17-rule firewall, DNS-5 packet ------------------------------ *)

let firewall_rules =
  "deny ip frag, deny src net 127.0.0.0/8, deny src net 10.0.0.0/8, deny \
   src net 172.16.0.0/12, allow dst host 192.168.1.2 && tcp dst port 25, \
   allow src host 192.168.1.2 && tcp src port 25 && tcp opt ack, allow src \
   net 192.168.1.0/24 && tcp dst port 80, allow dst net 192.168.1.0/24 && \
   tcp src port 80 && tcp opt ack, deny tcp dst port 23, deny tcp dst port \
   111, allow dst host 192.168.1.2 && tcp dst port 22, allow icmp type 8, \
   allow icmp type 0, deny udp dst port 69, deny udp dst port 2049, allow \
   dst host 192.168.1.3 && udp dst port 53, deny all"

let dns5_packet () =
  let p =
    Oclick_packet.Headers.Build.udp
      ~src_ip:(Oclick_packet.Ipaddr.of_string_exn "204.152.184.134")
      ~dst_ip:(Oclick_packet.Ipaddr.of_string_exn "192.168.1.3")
      ~src_port:1717 ~dst_port:53 ()
  in
  Oclick_packet.Packet.pull p 14;
  p

let firewall () =
  section "Section 4: click-fastclassifier on a 17-rule firewall (DNS-5)";
  let tree =
    match Oclick_classifier.Filter.ipfilter_tree firewall_rules with
    | Ok t -> Oclick_classifier.Optimize.optimize t
    | Error e -> failwith e
  in
  let p = dns5_packet () in
  let out, visited = Tree.classify_count tree p in
  assert (out = 0);
  let ns_of_cycles c = Platform.ns_of_cycles Platform.p0 c in
  let cm = Cost_model.create () in
  let interp_ns =
    ns_of_cycles
      (Cost_model.element_cycles cm ~cls:"IPFilter"
      + Cost_model.work_cycles (Hooks.W_classify_interp visited))
  in
  let compiled_ns =
    ns_of_cycles
      (Cost_model.element_cycles cm ~cls:"FastClassifier"
      + Cost_model.work_cycles (Hooks.W_classify_compiled visited))
  in
  row "decision tree: %d nodes, depth %d; DNS-5 packet visits %d nodes\n"
    (Tree.node_count tree) (Tree.depth tree) visited;
  row "IPFilter (interpreted):      %4d ns/packet   (paper: 388 ns, 23%% of \
       the forwarding path)\n"
    interp_ns;
  row "with click-fastclassifier:   %4d ns/packet   (paper: 188 ns)\n"
    compiled_ns;
  row "speedup: %.2fx                                (paper: 2.06x)\n"
    (float_of_int interp_ns /. float_of_int compiled_ns)

(* --- Figure 8: CPU cost breakdown ------------------------------------------ *)

let fig8 () =
  section "Figure 8: CPU cost breakdown, unoptimized IP router (P0)";
  let graph = base_graph 8 in
  let m = mlffr ~platform:Platform.p0 graph in
  let r = run_testbed ~platform:Platform.p0 ~graph m in
  row "%-34s %8s %8s\n" "Task" "measured" "paper";
  row "%-34s %5.0f ns %5d ns\n" "Receiving device interactions"
    r.Testbed.r_receive_ns 701;
  row "%-34s %5.0f ns %5d ns\n" "Click forwarding path" r.Testbed.r_forward_ns
    1657;
  row "%-34s %5.0f ns %5d ns\n" "Transmitting device interactions"
    r.Testbed.r_transmit_ns 547;
  row "%-34s %5.0f ns %5d ns\n" "Total" r.Testbed.r_total_ns 2905;
  row "\nimplied max rate %.0fk pps (paper: ~344k implied, 357k observed)\n"
    (1e6 /. r.Testbed.r_total_ns);
  row "cache misses per packet: %.1f (paper: 4)\n" r.Testbed.r_cache_misses

(* --- Figure 9: effect of the optimizations on CPU time --------------------- *)

let fig9_variants :
    (string * (unit -> Oclick_graph.Router.t) * (int * int) option) list =
  (* (name, graph, paper's (forwarding, total) where legible) *)
  [
    ("Base", (fun () -> base_graph 8), Some (1657, 2905));
    ("FC", (fun () -> variant_graph Oclick.Pipeline.Fc), None);
    ("DV", (fun () -> variant_graph Oclick.Pipeline.Dv), None);
    ("XF", (fun () -> variant_graph Oclick.Pipeline.Xf), None);
    ("All", (fun () -> variant_graph Oclick.Pipeline.All), Some (1101, 2349));
    ("MR", (fun () -> variant_graph Oclick.Pipeline.Mr), None);
    ("MR+All", (fun () -> variant_graph Oclick.Pipeline.Mr_all), Some (1061, 2309));
    ("Simple", (fun () -> simple_graph 8), None);
  ]

let fig9 () =
  section "Figure 9: language optimizations vs CPU time (P0, at each MLFFR)";
  row "%-8s %12s %12s %14s %14s\n" "config" "fwd ns" "total ns" "paper fwd"
    "paper total";
  let base_fwd = ref 0.0 in
  List.iter
    (fun (name, graph, paper) ->
      let graph = graph () in
      let m = mlffr ~platform:Platform.p0 graph in
      let r = run_testbed ~platform:Platform.p0 ~graph m in
      if name = "Base" then base_fwd := r.Testbed.r_forward_ns;
      let paper_s =
        match paper with
        | Some (f, t) -> Printf.sprintf "%8d ns %10d ns" f t
        | None -> Printf.sprintf "%11s %13s" "-" "-"
      in
      row "%-8s %9.0f ns %9.0f ns %s\n" name r.Testbed.r_forward_ns
        r.Testbed.r_total_ns paper_s;
      if name = "All" then
        row "  -> forwarding-path reduction vs Base: %.0f%% (paper: 34%%)\n"
          (100.0 *. (1.0 -. (r.Testbed.r_forward_ns /. !base_fwd))))
    fig9_variants;
  (* §8.2's microarchitectural claims for "All" *)
  let all = variant_graph Oclick.Pipeline.All in
  let m = mlffr ~platform:Platform.p0 all in
  let r = run_testbed ~platform:Platform.p0 ~graph:all m in
  row "\nAll: %.0f instructions retired/packet (paper: 988), %.1f cache \
       misses (paper: 4), code footprint %d bytes of 16384 L1i\n"
    r.Testbed.r_instructions r.Testbed.r_cache_misses r.Testbed.r_code_footprint

(* --- Figure 10: forwarding rate vs input rate ------------------------------- *)

let sweep_rates =
  [ 50_000; 100_000; 150_000; 200_000; 250_000; 300_000; 340_000; 380_000;
    420_000; 450_000; 480_000; 520_000; 560_000; 591_000 ]

let fig10 () =
  section "Figure 10: forwarding rate vs input rate, 64-byte packets (P0)";
  let configs =
    [
      ("Base", base_graph 8);
      ("All", variant_graph Oclick.Pipeline.All);
      ("MR+All", variant_graph Oclick.Pipeline.Mr_all);
      ("Simple", simple_graph 8);
    ]
  in
  row "%-10s" "input";
  List.iter (fun (n, _) -> row "%10s" n) configs;
  row "   (kpps)\n";
  List.iter
    (fun input ->
      row "%-10.0f" (kpps (float_of_int input));
      List.iter
        (fun (_, graph) ->
          let r =
            run_testbed ~duration_ms:40 ~warmup_ms:20 ~platform:Platform.p0
              ~graph input
          in
          row "%10.0f" (kpps r.Testbed.r_forwarded_pps))
        configs;
      row "\n")
    sweep_rates;
  row "\npaper MLFFRs: Base 357k; All 446k; MR+All 457k; optimized configs \
       decline to ~400k past their peaks\n";
  List.iter
    (fun (name, graph) ->
      row "measured MLFFR %-8s %6.0fk\n" name
        (kpps (float_of_int (mlffr ~platform:Platform.p0 graph))))
    configs

(* --- Figure 11: packet outcomes -------------------------------------------- *)

let fig11 () =
  section "Figure 11: cumulative outcome rates vs input rate (P0)";
  let configs =
    [
      ("Simple", simple_graph 8);
      ("Base", base_graph 8);
      ("MR+All", variant_graph Oclick.Pipeline.Mr_all);
    ]
  in
  List.iter
    (fun (name, graph) ->
      subsection (name ^ " (kpps: input, sent, +queue drop, +missed frame, +fifo overflow)");
      List.iter
        (fun input ->
          let r =
            run_testbed ~duration_ms:40 ~warmup_ms:20 ~platform:Platform.p0
              ~graph input
          in
          let per_s c = float_of_int c /. 0.040 in
          let sent = r.Testbed.r_forwarded_pps in
          let qd = sent +. per_s r.Testbed.r_outcomes.Testbed.oc_queue_drop in
          let mf = qd +. per_s r.Testbed.r_outcomes.Testbed.oc_missed_frame in
          let fo = mf +. per_s r.Testbed.r_outcomes.Testbed.oc_fifo_overflow in
          row "%8.0f %9.0f %9.0f %9.0f %9.0f\n"
            (kpps r.Testbed.r_offered_pps)
            (kpps sent) (kpps qd) (kpps mf) (kpps fo))
        sweep_rates)
    configs;
  row "\npaper: Base is CPU-limited (all drops are missed frames); Simple is \
       PCI-limited (FIFO overflows and queue drops, no missed frames)\n"

(* --- Figure 12: MLFFR per platform ------------------------------------------ *)

let fig12 () =
  section "Figure 12: effect of \"All\" on MLFFR per hardware platform";
  let paper = [ ("P0", 446, 357, 1.25); ("P1", 430, 350, 1.23);
                ("P2", 450, 330, 1.36); ("P3", 740, 640, 1.16) ] in
  row "%-4s %10s %10s %7s %28s\n" "" "All" "Base" "ratio" "paper (All/Base/ratio)";
  List.iter
    (fun (platform : Platform.t) ->
      let n = platform.Platform.p_nports in
      let base = base_graph n in
      let hosts, links = mr_context n in
      ignore hosts;
      ignore links;
      let all = Oclick.Pipeline.optimize Oclick.Pipeline.All (base_graph n) in
      let mb = mlffr ~platform base in
      let ma = mlffr ~platform all in
      let pa, pb, pr =
        match List.assoc_opt platform.Platform.p_name
                (List.map (fun (n, a, b, r) -> (n, (a, b, r))) paper)
        with
        | Some (a, b, r) -> (a, b, r)
        | None -> (0, 0, 0.0)
      in
      row "%-4s %9.0fk %9.0fk %7.2f %12dk %6dk %6.2f\n"
        platform.Platform.p_name
        (kpps (float_of_int ma))
        (kpps (float_of_int mb))
        (float_of_int ma /. float_of_int mb)
        pa pb pr)
    Platform.all

(* --- Figure 13: rate curves on newer platforms -------------------------------- *)

let fig13 () =
  section "Figure 13: forwarding rates on newer platforms (P1, P2, P3)";
  List.iter
    (fun (platform : Platform.t) ->
      let n = platform.Platform.p_nports in
      let configs =
        [
          ("Base", base_graph n);
          ("All", Oclick.Pipeline.optimize Oclick.Pipeline.All (base_graph n));
          ("Simple", simple_graph n);
        ]
      in
      subsection (Printf.sprintf "%s (%d MHz CPU, %d-bit/%d MHz PCI)"
                    platform.Platform.p_name platform.Platform.p_cpu_mhz
                    platform.Platform.p_pci_bits platform.Platform.p_pci_mhz);
      let max_in = 2 * Platform.max_host_rate_pps platform in
      let points =
        List.init 10 (fun i -> max_in * (i + 1) / 10)
      in
      row "%-10s" "input";
      List.iter (fun (n, _) -> row "%10s" n) configs;
      row "   (kpps)\n";
      List.iter
        (fun input ->
          row "%-10.0f" (kpps (float_of_int input));
          List.iter
            (fun (_, graph) ->
              let r =
                run_testbed ~duration_ms:30 ~warmup_ms:15 ~platform ~graph
                  input
              in
              row "%10.0f" (kpps r.Testbed.r_forwarded_pps))
            configs;
          row "\n")
        points)
    [ Platform.p1; Platform.p2; Platform.p3 ]

(* --- extras: scaling and ablations -------------------------------------------- *)

let xform_scale () =
  section "click-xform scaling (paper 6.2: hundreds of replacements on a \
           graph of thousands of elements in about a minute)";
  List.iter
    (fun n ->
      let graph = base_graph n in
      let t0 = Unix.gettimeofday () in
      match
        Oclick_optim.Xform.run ~patterns:(Oclick_optim.Patterns.combos ())
          graph
      with
      | Ok (g', count) ->
          row "%4d interfaces: %5d elements, %4d replacements, %6.2f s -> \
               %d elements\n"
            n
            (Oclick_graph.Router.size graph)
            count
            (Unix.gettimeofday () -. t0)
            (Oclick_graph.Router.size g')
      | Error e -> row "%4d interfaces: ERROR %s\n" n e)
    [ 8; 16; 32; 64; 128; 256 ]

let lookup_scaling () =
  section "Route-lookup scaling: general-purpose linear table vs DIR-24-8 \
           trie (the paper's 3 general-vs-specialized trade)";
  let cycles_for cls nroutes =
    let routes =
      String.concat ", "
        (List.init nroutes (fun i ->
             Printf.sprintf "10.%d.%d.0/24 %d" (i / 256) (i mod 256) (i mod 4)))
    in
    let config =
      Printf.sprintf
        "Idle -> rt :: %s(%s); rt [0] -> Discard; rt [1] -> Discard; rt [2] \
         -> Discard; rt [3] -> Discard;"
        cls routes
    in
    let graph =
      match Oclick_graph.Router.parse_string config with
      | Ok g -> g
      | Error e -> failwith e
    in
    let total = ref 0 and count = ref 0 in
    let hooks =
      {
        Oclick_runtime.Hooks.null with
        Oclick_runtime.Hooks.on_work =
          (fun ~idx:_ ~cls:_ w ->
            match w with
            | Oclick_runtime.Hooks.W_lookup _ ->
                total := !total + Cost_model.work_cycles w;
                incr count
            | _ -> ());
      }
    in
    match Oclick_runtime.Driver.instantiate ~hooks graph with
    | Error e -> failwith e
    | Ok d ->
        let rt = Option.get (Oclick_runtime.Driver.element d "rt") in
        for i = 0 to 499 do
          let p = Oclick_packet.Packet.create 60 in
          (Oclick_packet.Packet.anno p).Oclick_packet.Packet.dst_ip <-
            0x0a000000 lor (i * 1237 mod (nroutes * 256));
          rt#push 0 p
        done;
        float_of_int !total /. float_of_int (max 1 !count)
  in
  row "%-8s %16s %16s\n" "routes" "LinearIPLookup" "LookupIPRoute";
  List.iter
    (fun n ->
      row "%-8d %13.0f cy %13.0f cy\n" n
        (cycles_for "LinearIPLookup" n)
        (cycles_for "LookupIPRoute" n))
    [ 4; 16; 64; 256; 1024 ];
  row "\nthe generic table scans linearly; the specialized trie touches at \
       most two table entries per lookup\n"

let devirtualize_ablation () =
  section "Ablation: devirtualization, code sharing, and the i-cache \
           (paper 6.1)";
  (* 1. The symmetric IP router: analogous elements in different interface
     paths share code, so specializing adds no i-cache footprint at all —
     the paper's code-sharing rules at work. *)
  let n = 24 in
  let platform24 = { Platform.p0 with Platform.p_nports = n } in
  let measure platform g =
    run_testbed ~duration_ms:40 ~warmup_ms:20 ~platform ~graph:g 200_000
  in
  let base = base_graph n in
  let rb = measure platform24 base in
  let rf = measure platform24 (Oclick.Pipeline.devirtualize (base_graph n)) in
  row "symmetric %d-interface router (%d elements), 200k pps:\n" n
    (Oclick_graph.Router.size base);
  row "  Base:            fwd %5.0f ns, code footprint %6d bytes\n"
    rb.Testbed.r_forward_ns rb.Testbed.r_code_footprint;
  row "  DV (everything): fwd %5.0f ns, code footprint %6d bytes (sharing: \
       no expansion)\n"
    rf.Testbed.r_forward_ns rf.Testbed.r_code_footprint;
  (* 2. A heterogeneous configuration: forwarding chains of distinct
     shapes cannot share specialized code (rule 4), so devirtualizing
     everything duplicates element code until it overflows the 16 KB L1i
     — "code expansion may make complete devirtualization impractical".
     The tool's exclusion list is the escape hatch. *)
  let chains = 48 in
  let buf = Buffer.create 4096 in
  for i = 1 to chains do
    Buffer.add_string buf (Printf.sprintf "s%d :: InfiniteSource(LIMIT 1)" i);
    for j = 1 to (i mod 24) + 1 do
      Buffer.add_string buf (Printf.sprintf " -> c%d_%d :: Counter" i j)
    done;
    Buffer.add_string buf " -> Discard;\n"
  done;
  let hetero () =
    match Oclick_graph.Router.parse_string (Buffer.contents buf) with
    | Ok g -> g
    | Error e -> failwith e
  in
  let footprint g =
    let cm = Oclick_hw.Cost_model.create () in
    List.iter
      (fun i ->
        Oclick_hw.Cost_model.note_code_class cm
          (Oclick_graph.Router.class_of g i))
      (Oclick_graph.Router.indices g);
    ( Oclick_hw.Cost_model.code_footprint_bytes cm,
      Oclick_hw.Cost_model.element_cycles cm ~cls:"Counter" )
  in
  let fb, cb = footprint (hetero ()) in
  let full = Oclick.Pipeline.devirtualize (hetero ()) in
  let ff, cf = footprint full in
  let spared =
    (* the paper's escape hatch: tell the tool not to devirtualize the
       per-chain elements *)
    let g = hetero () in
    let exclude =
      List.filter_map
        (fun i ->
          let name = Oclick_graph.Router.name g i in
          if String.length name > 1 && name.[0] = 'c' then Some name else None)
        (Oclick_graph.Router.indices g)
    in
    Oclick.Pipeline.devirtualize ~exclude g
  in
  let fs, cs = footprint spared in
  row "\nheterogeneous config (%d chains of distinct shapes):\n" chains;
  row "  Base:                  footprint %6d bytes, Counter entry %3d \
       cycles\n" fb cb;
  row "  DV (everything):       footprint %6d bytes, Counter entry %3d \
       cycles%s\n" ff cf
    (if ff > 16384 then "  <- exceeds 16 KB L1i: every entry pays" else "");
  row "  DV (--exclude chains): footprint %6d bytes, Counter entry %3d \
       cycles\n" fs cs
