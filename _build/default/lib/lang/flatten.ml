exception Fail of string

let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

let max_depth = 64

(* Substitute formal parameters into every configuration string of a body.
   A nested compound that rebinds a formal shadows the outer binding. *)
let rec substitute_body bindings (t : Ast.t) : Ast.t =
  if bindings = [] then t
  else begin
    let subst_class (c : Ast.compound) =
      let inner =
        List.filter (fun (name, _) -> not (List.mem name c.formals)) bindings
      in
      { c with Ast.body = substitute_body inner c.body }
    in
    {
      t with
      Ast.elements =
        List.map
          (fun (e : Ast.element) ->
            let e =
              { e with Ast.e_config = Args.substitute bindings e.e_config }
            in
            match e.e_class with
            | Ast.Cname _ -> e
            | Ast.Ccompound c ->
                { e with Ast.e_class = Ast.Ccompound (subst_class c) })
          t.elements;
      classes = List.map (fun (n, c) -> (n, subst_class c)) t.classes;
    }
  end

let rec flatten_config env depth (t : Ast.t) : Ast.t =
  if depth > max_depth then failf "elementclass nesting too deep (recursive?)";
  let env = t.classes @ env in
  (* Expand elements left to right, accumulating the flattened graph. *)
  let expand_one acc (e : Ast.element) =
    let compound =
      match e.e_class with
      | Ast.Ccompound c -> Some c
      | Ast.Cname n -> List.assoc_opt n env
    in
    match compound with
    | None -> Ast.add_element acc e
    | Some c -> expand_compound env depth acc e c
  in
  let start = { Ast.empty with
                Ast.connections = t.connections;
                requirements = t.requirements } in
  let flat = List.fold_left expand_one start t.elements in
  { flat with Ast.classes = [] }

and expand_compound env depth acc (e : Ast.element) (c : Ast.compound) =
  let args = Args.split e.e_config in
  if List.length args > List.length c.formals then
    failf "element %s: too many arguments for compound class (%d > %d)"
      e.e_name (List.length args) (List.length c.formals);
  let bindings =
    List.mapi
      (fun i formal ->
        (formal, match List.nth_opt args i with Some a -> a | None -> ""))
      c.formals
  in
  let body = substitute_body bindings c.body in
  (* Flatten the body itself first so nested compounds disappear. *)
  let body = flatten_config env (depth + 1) body in
  let rename n = e.e_name ^ "/" ^ n in
  let is_input n = String.equal n "input" in
  let is_output n = String.equal n "output" in
  (* Connections in the accumulated graph that touch the compound element. *)
  let into_e =
    List.filter (fun (x : Ast.connection) -> String.equal x.c_to e.e_name)
      acc.Ast.connections
  and out_of_e =
    List.filter (fun (x : Ast.connection) -> String.equal x.c_from e.e_name)
      acc.Ast.connections
  and others =
    List.filter
      (fun (x : Ast.connection) ->
        (not (String.equal x.c_to e.e_name))
        && not (String.equal x.c_from e.e_name))
      acc.Ast.connections
  in
  (* Port sanity: every externally connected port must exist in the body. *)
  let body_in_ports =
    List.filter_map
      (fun (x : Ast.connection) ->
        if is_input x.c_from then Some x.c_from_port else None)
      body.Ast.connections
  and body_out_ports =
    List.filter_map
      (fun (x : Ast.connection) ->
        if is_output x.c_to then Some x.c_to_port else None)
      body.Ast.connections
  in
  List.iter
    (fun (x : Ast.connection) ->
      if not (List.mem x.c_to_port body_in_ports) then
        failf "compound element %s has no input port %d" e.e_name x.c_to_port)
    into_e;
  List.iter
    (fun (x : Ast.connection) ->
      if not (List.mem x.c_from_port body_out_ports) then
        failf "compound element %s has no output port %d" e.e_name
          x.c_from_port)
    out_of_e;
  (* Splice body connections. *)
  let spliced = ref [] in
  let emit c = spliced := c :: !spliced in
  List.iter
    (fun (b : Ast.connection) ->
      match (is_input b.c_from, is_output b.c_to) with
      | false, false ->
          emit { b with Ast.c_from = rename b.c_from; c_to = rename b.c_to }
      | true, false ->
          List.iter
            (fun (x : Ast.connection) ->
              if x.c_to_port = b.c_from_port then
                emit
                  {
                    Ast.c_from = x.c_from;
                    c_from_port = x.c_from_port;
                    c_to = rename b.c_to;
                    c_to_port = b.c_to_port;
                  })
            into_e
      | false, true ->
          List.iter
            (fun (x : Ast.connection) ->
              if x.c_from_port = b.c_to_port then
                emit
                  {
                    Ast.c_from = rename b.c_from;
                    c_from_port = b.c_from_port;
                    c_to = x.c_to;
                    c_to_port = x.c_to_port;
                  })
            out_of_e
      | true, true ->
          (* pass-through: join external producers to external consumers *)
          List.iter
            (fun (x : Ast.connection) ->
              if x.c_to_port = b.c_from_port then
                List.iter
                  (fun (y : Ast.connection) ->
                    if y.c_from_port = b.c_to_port then
                      emit
                        {
                          Ast.c_from = x.c_from;
                          c_from_port = x.c_from_port;
                          c_to = y.c_to;
                          c_to_port = y.c_to_port;
                        })
                  out_of_e)
            into_e)
    body.Ast.connections;
  let body_elements =
    List.map
      (fun (b : Ast.element) -> { b with Ast.e_name = rename b.e_name })
      body.Ast.elements
  in
  {
    Ast.elements = acc.Ast.elements @ body_elements;
    connections = others @ List.rev !spliced;
    classes = acc.Ast.classes;
    requirements =
      acc.Ast.requirements
      @ List.filter
          (fun r -> not (List.mem r acc.Ast.requirements))
          body.Ast.requirements;
  }

let flatten t =
  match flatten_config [] 0 t with
  | flat -> Ok flat
  | exception Fail msg -> Error msg

let flatten_exn t =
  match flatten t with Ok t -> t | Error msg -> failwith msg
