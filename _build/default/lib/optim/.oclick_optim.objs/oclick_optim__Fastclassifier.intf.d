lib/optim/fastclassifier.mli: Oclick_classifier Oclick_graph
