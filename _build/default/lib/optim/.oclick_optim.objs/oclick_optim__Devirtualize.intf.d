lib/optim/devirtualize.mli: Oclick_graph
