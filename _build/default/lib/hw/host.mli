(** A source/destination host (paper §8.1).

    Each host sits on a full-duplex point-to-point link to one router
    interface. It generates an even flow of 64-byte UDP packets at a
    configured rate, answers ARP queries for its address, and counts the
    UDP packets it receives. *)

class host :
  engine:Engine.t
  -> platform:Platform.t
  -> ip:Oclick_packet.Ipaddr.t
  -> eth:Oclick_packet.Ethaddr.t
  -> router_eth:Oclick_packet.Ethaddr.t
  -> unit
  -> object
       method set_wire : (Oclick_packet.Packet.t -> unit) -> unit
       (** How frames reach the router (the NIC's [wire_arrive]). *)

       method receive : Oclick_packet.Packet.t -> unit
       (** Called by the router NIC when it transmits a frame to us. *)

       method start_traffic :
         dst_ip:Oclick_packet.Ipaddr.t -> rate_pps:int ->
         ?payload_len:int -> until:int -> unit -> unit
       (** Generate UDP at [rate_pps] until simulation time [until] ns. *)

       method sent_udp : int
       method received_udp : int
       method received_icmp : int
       method received_other : int
       method reset_counters : unit
     end
