(** [click-devirtualize]: replaces packet-transfer virtual calls with
    direct calls (paper §6.1) — static class analysis at the configuration
    level.

    The tool partitions the router's elements into code-sharing equivalence
    classes using the paper's four rules — two elements can share code
    unless (1) their classes differ, (2) their port counts differ, (3) a
    port is push on one and pull on the other, or (4) a pull input or push
    output connects to elements that cannot themselves share code, or at
    different port numbers. The partition is computed by refinement to a
    fixpoint, like DFA minimization.

    Each equivalence class that performs outgoing packet transfers gets a
    specialized element class whose transfers are direct calls; generated
    source is attached to the archive, and with [~install] the specialized
    classes are registered with the runtime (constructing the original
    element but dispatching directly and sharing one call site per
    specialized class, which is what the branch-predictor model sees). *)

type specialized = {
  s_class : string;  (** e.g. ["Devirtualize@@Counter@@1"] *)
  s_original : string;
  s_members : string list;  (** element names sharing this code *)
}

val run :
  ?install:bool ->
  ?exclude:string list ->
  Oclick_graph.Router.t ->
  (Oclick_graph.Router.t * specialized list, string) result
(** [exclude] names elements that must keep their generic classes (the
    paper's escape hatch against code explosion). The input graph is not
    modified. *)

val equivalence_classes :
  ?exclude:string list -> Oclick_graph.Router.t -> (int array, string) result
(** The raw partition: a class id per element index (exposed for tests). *)
