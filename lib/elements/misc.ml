(* Alignment support and the multi-router RouterLink (paper §7). *)

open Prelude

(* Align(MODULUS, OFFSET): copies packet data so its offset within the
   machine word satisfies the constraint. The copy is exactly the cost
   click-align works to avoid inserting unnecessarily (§7.1). *)
class align name =
  object (self)
    inherit E.base name
    val mutable modulus = 4
    val mutable offset = 0
    val mutable copies = 0
    method class_name = "Align"

    method! configure config =
      match Args.split config with
      | [ m; o ] -> (
          match (Args.parse_int m, Args.parse_int o) with
          | Some m, Some o when m > 0 && o >= 0 && o < m ->
              modulus <- m;
              offset <- o;
              Ok ()
          | _ -> Error "Align expects MODULUS, OFFSET with 0 <= OFFSET < MODULUS")
      | _ -> Error "Align expects MODULUS, OFFSET"

    method private realign p =
      if Packet.data_offset p mod modulus <> offset then begin
        Packet.realign p ~modulus ~offset;
        copies <- copies + 1;
        self#charge (Hooks.W_copy (Packet.length p))
      end

    method! push _ p =
      self#realign p;
      self#output 0 p

    method! pull _ =
      match self#input_pull 0 with
      | Some p ->
          self#realign p;
          Some p
      | None -> None

    method! stats = [ ("copies", copies) ]
  end

(* AlignmentInfo: a pure information element; click-align appends it so
   elements can learn what alignment to expect. It has no ports and the
   runtime accepts any configuration. *)
class alignment_info name =
  object
    inherit E.base name
    method class_name = "AlignmentInfo"
    method! port_count = "0/0"
    method! configure _ = Ok ()
  end

(* RouterLink: the inter-router connection marker emitted by
   click-combine (paper §7.2). At run time it is a transparent wire. *)
class router_link name =
  object (self)
    inherit E.base name
    method class_name = "RouterLink"
    method! configure _ = Ok ()
    method! push _ p = self#output 0 p
    method! pull _ = self#input_pull 0
  end

(* Stall(SPIN_MS [, AFTER n]): a transparent wire that wedges the
   calling thread once — a busy-wait of SPIN_MS wall-clock milliseconds
   when the AFTER-th packet passes (default: the first). The test
   subject for the multi-domain watchdog: placing it in one shard turns
   that shard into a deliberately stalled domain. *)
class stall name =
  object (self)
    inherit E.base name
    val mutable spin_ms = 100
    val mutable after = 1
    val mutable seen = 0
    val mutable spun = false
    method class_name = "Stall"
    method! processing = "h/h"

    method! configure config =
      let positional, keywords = parse_positional_and_keywords config in
      let ms_ok =
        match positional with
        | [] -> Ok ()
        | [ ms ] -> (
            match Args.parse_int ms with
            | Some m when m >= 0 ->
                spin_ms <- m;
                Ok ()
            | _ -> Error (Printf.sprintf "bad Stall spin %S (ms >= 0)" ms))
        | _ -> Error "Stall expects SPIN_MS and optional AFTER n"
      in
      match ms_ok with
      | Error _ as e -> e
      | Ok () ->
          List.fold_left
            (fun acc (k, v) ->
              match acc with
              | Error _ -> acc
              | Ok () -> (
                  match k with
                  | "AFTER" -> (
                      match Args.parse_int v with
                      | Some n when n >= 1 ->
                          after <- n;
                          Ok ()
                      | _ ->
                          Error
                            (Printf.sprintf "bad Stall AFTER %S (integer >= 1)"
                               v))
                  | _ -> Error (Printf.sprintf "Stall: unknown keyword %s" k)))
            (Ok ()) keywords

    method! push _ p =
      seen <- seen + 1;
      if (not spun) && seen >= after then begin
        spun <- true;
        let until =
          Unix.gettimeofday () +. (float_of_int spin_ms /. 1000.0)
        in
        while Unix.gettimeofday () < until do
          ()
        done
      end;
      self#output 0 p

    method! stats = [ ("seen", seen); ("spun", (if spun then 1 else 0)) ]
  end

let register () =
  def "Align" (fun n -> (new align n :> E.t));
  def "AlignmentInfo" ~ports:"0/0" (fun n -> (new alignment_info n :> E.t));
  def "RouterLink" (fun n -> (new router_link n :> E.t));
  def "Stall" (fun n -> (new stall n :> E.t))
