lib/runtime/netdevice.ml: Oclick_packet Queue
