module Ether = struct
  let header_length = 14
  let ethertype_ip = 0x0800
  let ethertype_arp = 0x0806
  let dst p = Ethaddr.of_bytes (Packet.get_string p ~pos:0 ~len:6)
  let src p = Ethaddr.of_bytes (Packet.get_string p ~pos:6 ~len:6)
  let ethertype p = Packet.get_u16 p 12
  let set_dst p a = Packet.set_string p ~pos:0 (Ethaddr.to_bytes a)
  let set_src p a = Packet.set_string p ~pos:6 (Ethaddr.to_bytes a)
  let set_ethertype p v = Packet.set_u16 p 12 v

  let encap p ~dst ~src ~ethertype =
    Packet.push p header_length;
    set_dst p dst;
    set_src p src;
    set_ethertype p ethertype
end

module Ip = struct
  let min_header_length = 20
  let proto_icmp = 1
  let proto_tcp = 6
  let proto_udp = 17
  let version ?(off = 0) p = Packet.get_u8 p off lsr 4
  let header_length ?(off = 0) p = (Packet.get_u8 p off land 0xf) * 4
  let tos ?(off = 0) p = Packet.get_u8 p (off + 1)
  let total_length ?(off = 0) p = Packet.get_u16 p (off + 2)
  let ident ?(off = 0) p = Packet.get_u16 p (off + 4)
  let dont_fragment ?(off = 0) p = Packet.get_u16 p (off + 6) land 0x4000 <> 0
  let more_fragments ?(off = 0) p = Packet.get_u16 p (off + 6) land 0x2000 <> 0
  let fragment_offset ?(off = 0) p = Packet.get_u16 p (off + 6) land 0x1fff
  let ttl ?(off = 0) p = Packet.get_u8 p (off + 8)
  let protocol ?(off = 0) p = Packet.get_u8 p (off + 9)
  let header_checksum ?(off = 0) p = Packet.get_u16 p (off + 10)
  let src ?(off = 0) p = Packet.get_u32 p (off + 12)
  let dst ?(off = 0) p = Packet.get_u32 p (off + 16)
  let set_tos ?(off = 0) p v = Packet.set_u8 p (off + 1) v
  let set_total_length ?(off = 0) p v = Packet.set_u16 p (off + 2) v
  let set_ident ?(off = 0) p v = Packet.set_u16 p (off + 4) v

  let set_flags_fragment ?(off = 0) p ~df ~mf ~frag =
    let v =
      (if df then 0x4000 else 0) lor (if mf then 0x2000 else 0)
      lor (frag land 0x1fff)
    in
    Packet.set_u16 p (off + 6) v

  let set_ttl ?(off = 0) p v = Packet.set_u8 p (off + 8) v
  let set_protocol ?(off = 0) p v = Packet.set_u8 p (off + 9) v
  let set_src ?(off = 0) p v = Packet.set_u32 p (off + 12) v
  let set_dst ?(off = 0) p v = Packet.set_u32 p (off + 16) v

  let update_checksum ?(off = 0) p =
    let hl = header_length ~off p in
    Packet.set_u16 p (off + 10) 0;
    Packet.set_u16 p (off + 10) (Packet.checksum p ~pos:off ~len:hl)

  let checksum_valid ?(off = 0) p =
    let hl = header_length ~off p in
    hl >= min_header_length
    && off + hl <= Packet.length p
    && Packet.checksum p ~pos:off ~len:hl = 0

  let decrement_ttl ?(off = 0) p =
    (* RFC 1141 incremental checksum update: TTL lives in the high byte of
       the word at offset 8, so subtracting one from TTL adds 0x0100 to the
       checksum (in one's-complement arithmetic). *)
    set_ttl ~off p (ttl ~off p - 1);
    let sum = header_checksum ~off p + 0x0100 in
    Packet.set_u16 p (off + 10) ((sum + (sum lsr 16)) land 0xffff)

  let write_header ?(off = 0) p ~src ~dst ~protocol ~total_length ?(ttl = 64)
      ?(tos = 0) ?(ident = 0) () =
    Packet.set_u8 p off 0x45;
    set_tos ~off p tos;
    set_total_length ~off p total_length;
    set_ident ~off p ident;
    set_flags_fragment ~off p ~df:false ~mf:false ~frag:0;
    set_ttl ~off p ttl;
    set_protocol ~off p protocol;
    set_src ~off p src;
    set_dst ~off p dst;
    update_checksum ~off p
end

module Udp = struct
  let header_length = 8
  let src_port ?(off = 0) p = Packet.get_u16 p off
  let dst_port ?(off = 0) p = Packet.get_u16 p (off + 2)
  let udp_length ?(off = 0) p = Packet.get_u16 p (off + 4)
  let set_src_port ?(off = 0) p v = Packet.set_u16 p off v
  let set_dst_port ?(off = 0) p v = Packet.set_u16 p (off + 2) v
  let set_udp_length ?(off = 0) p v = Packet.set_u16 p (off + 4) v
end

module Tcp = struct
  let src_port ?(off = 0) p = Packet.get_u16 p off
  let dst_port ?(off = 0) p = Packet.get_u16 p (off + 2)
  let flags ?(off = 0) p = Packet.get_u8 p (off + 13)
  let set_src_port ?(off = 0) p v = Packet.set_u16 p off v
  let set_dst_port ?(off = 0) p v = Packet.set_u16 p (off + 2) v
  let set_flags ?(off = 0) p v = Packet.set_u8 p (off + 13) v
  let flag_fin = 0x01
  let flag_syn = 0x02
  let flag_rst = 0x04
  let flag_ack = 0x10
end

module Icmp = struct
  let type_echo_reply = 0
  let type_dst_unreachable = 3
  let type_redirect = 5
  let type_echo = 8
  let type_time_exceeded = 11
  let type_parameter_problem = 12
  let icmp_type ?(off = 0) p = Packet.get_u8 p off
  let code ?(off = 0) p = Packet.get_u8 p (off + 1)
  let set_type ?(off = 0) p v = Packet.set_u8 p off v
  let set_code ?(off = 0) p v = Packet.set_u8 p (off + 1) v

  let update_checksum ?(off = 0) p ~len =
    Packet.set_u16 p (off + 2) 0;
    Packet.set_u16 p (off + 2) (Packet.checksum p ~pos:off ~len)
end

module Arp = struct
  let packet_length = 28
  let op_request = 1
  let op_reply = 2
  let op ?(off = 0) p = Packet.get_u16 p (off + 6)

  let sender_eth ?(off = 0) p =
    Ethaddr.of_bytes (Packet.get_string p ~pos:(off + 8) ~len:6)

  let sender_ip ?(off = 0) p = Packet.get_u32 p (off + 14)

  let target_eth ?(off = 0) p =
    Ethaddr.of_bytes (Packet.get_string p ~pos:(off + 18) ~len:6)

  let target_ip ?(off = 0) p = Packet.get_u32 p (off + 24)

  let write ?(off = 0) p ~op ~sender_eth ~sender_ip ~target_eth ~target_ip =
    Packet.set_u16 p off 1 (* hardware type: Ethernet *);
    Packet.set_u16 p (off + 2) Ether.ethertype_ip;
    Packet.set_u8 p (off + 4) 6 (* hardware address length *);
    Packet.set_u8 p (off + 5) 4 (* protocol address length *);
    Packet.set_u16 p (off + 6) op;
    Packet.set_string p ~pos:(off + 8) (Ethaddr.to_bytes sender_eth);
    Packet.set_u32 p (off + 14) sender_ip;
    Packet.set_string p ~pos:(off + 18) (Ethaddr.to_bytes target_eth);
    Packet.set_u32 p (off + 24) target_ip
end

module L4 = struct
  let pseudo_header_sum p ~ip_off ~len =
    let word_sum off =
      ((Packet.get_u32 p off lsr 16) land 0xffff) + (Packet.get_u32 p off land 0xffff)
    in
    let s =
      word_sum (ip_off + 12) (* source address *)
      + word_sum (ip_off + 16) (* destination address *)
      + Ip.protocol ~off:ip_off p + len
    in
    Checksum.combine s 0

  let checksum p ~ip_off ~l4_off ~len =
    let body = Packet.ones_complement_sum p ~pos:l4_off ~len in
    Checksum.finish (Checksum.combine (pseudo_header_sum p ~ip_off ~len) body)

  let update_udp p ~ip_off =
    let l4_off = ip_off + Ip.header_length ~off:ip_off p in
    let len = Udp.udp_length ~off:l4_off p in
    Packet.set_u16 p (l4_off + 6) 0;
    let c = checksum p ~ip_off ~l4_off ~len in
    (* an all-zero computed checksum is transmitted as 0xffff *)
    Packet.set_u16 p (l4_off + 6) (if c = 0 then 0xffff else c)

  let update_tcp p ~ip_off =
    let hl = Ip.header_length ~off:ip_off p in
    let l4_off = ip_off + hl in
    let len = Ip.total_length ~off:ip_off p - hl in
    Packet.set_u16 p (l4_off + 16) 0;
    Packet.set_u16 p (l4_off + 16) (checksum p ~ip_off ~l4_off ~len)

  let udp_valid p ~ip_off =
    let l4_off = ip_off + Ip.header_length ~off:ip_off p in
    let len = Udp.udp_length ~off:l4_off p in
    Packet.get_u16 p (l4_off + 6) = 0
    || checksum p ~ip_off ~l4_off ~len = 0

  let tcp_valid p ~ip_off =
    let hl = Ip.header_length ~off:ip_off p in
    let l4_off = ip_off + hl in
    let len = Ip.total_length ~off:ip_off p - hl in
    checksum p ~ip_off ~l4_off ~len = 0
end

module Build = struct
  let udp ?(src_eth = Ethaddr.zero) ?(dst_eth = Ethaddr.zero) ~src_ip ~dst_ip
      ?(src_port = 1234) ?(dst_port = 1234) ?(payload_len = 14) ?(ttl = 64) ()
      =
    let ip_len = Ip.min_header_length + Udp.header_length + payload_len in
    let p = Packet.create (Ether.header_length + ip_len) in
    Packet.set_string p ~pos:0 (Ethaddr.to_bytes dst_eth);
    Packet.set_string p ~pos:6 (Ethaddr.to_bytes src_eth);
    Packet.set_u16 p 12 Ether.ethertype_ip;
    let off = Ether.header_length in
    Ip.write_header ~off p ~src:src_ip ~dst:dst_ip ~protocol:Ip.proto_udp
      ~total_length:ip_len ~ttl ();
    let uoff = off + Ip.min_header_length in
    Udp.set_src_port ~off:uoff p src_port;
    Udp.set_dst_port ~off:uoff p dst_port;
    Udp.set_udp_length ~off:uoff p (Udp.header_length + payload_len);
    p

  let arp_query ~src_eth ~src_ip ~target_ip =
    let p = Packet.create (Ether.header_length + Arp.packet_length) in
    Packet.set_string p ~pos:0 (Ethaddr.to_bytes Ethaddr.broadcast);
    Packet.set_string p ~pos:6 (Ethaddr.to_bytes src_eth);
    Packet.set_u16 p 12 Ether.ethertype_arp;
    Arp.write ~off:Ether.header_length p ~op:Arp.op_request ~sender_eth:src_eth
      ~sender_ip:src_ip ~target_eth:Ethaddr.zero ~target_ip;
    p

  let arp_reply ~src_eth ~src_ip ~dst_eth ~dst_ip =
    let p = Packet.create (Ether.header_length + Arp.packet_length) in
    Packet.set_string p ~pos:0 (Ethaddr.to_bytes dst_eth);
    Packet.set_string p ~pos:6 (Ethaddr.to_bytes src_eth);
    Packet.set_u16 p 12 Ether.ethertype_arp;
    Arp.write ~off:Ether.header_length p ~op:Arp.op_reply ~sender_eth:src_eth
      ~sender_ip:src_ip ~target_eth:dst_eth ~target_ip:dst_ip;
    p

  let icmp_echo ~src_ip ~dst_ip ?(payload_len = 8) () =
    let ip_len = Ip.min_header_length + 8 + payload_len in
    let p = Packet.create (Ether.header_length + ip_len) in
    Packet.set_u16 p 12 Ether.ethertype_ip;
    let off = Ether.header_length in
    Ip.write_header ~off p ~src:src_ip ~dst:dst_ip ~protocol:Ip.proto_icmp
      ~total_length:ip_len ();
    let ioff = off + Ip.min_header_length in
    Icmp.set_type ~off:ioff p Icmp.type_echo;
    Icmp.set_code ~off:ioff p 0;
    Icmp.update_checksum ~off:ioff p ~len:(8 + payload_len);
    p

  let tcp ~src_ip ~dst_ip ~src_port ~dst_port ?(flags = Tcp.flag_syn) () =
    let ip_len = Ip.min_header_length + 20 in
    let p = Packet.create (Ether.header_length + ip_len) in
    Packet.set_u16 p 12 Ether.ethertype_ip;
    let off = Ether.header_length in
    Ip.write_header ~off p ~src:src_ip ~dst:dst_ip ~protocol:Ip.proto_tcp
      ~total_length:ip_len ();
    let toff = off + Ip.min_header_length in
    Tcp.set_src_port ~off:toff p src_port;
    Tcp.set_dst_port ~off:toff p dst_port;
    Packet.set_u8 p (toff + 12) 0x50 (* data offset: 5 words *);
    Tcp.set_flags ~off:toff p flags;
    p
end
