module Packet = Oclick_packet.Packet
module Headers = Oclick_packet.Headers

module Rng = struct
  type t = { seed0 : int; mutable s : int }

  let mask = (1 lsl 62) - 1

  (* Scramble the raw seed so that nearby seeds (1, 2, 3...) give
     uncorrelated streams; avoid the all-zero fixed point. *)
  let create ~seed =
    let s = ref (seed land mask) in
    for _ = 1 to 4 do
      s := (!s * 0x2545F4914F6CDD1D) + 0x9E3779B9 land mask;
      s := !s land mask
    done;
    if !s = 0 then s := 0x5DEECE66D;
    { seed0 = !s; s = !s }

  let bits t =
    let x = t.s in
    let x = x lxor (x lsl 13) land mask in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) land mask in
    t.s <- x;
    x

  let split t label =
    (* Child seed from the parent seed and the label only — not from the
       parent's draw position — so stream identity is stable no matter
       when the child is first requested. *)
    create ~seed:(t.seed0 lxor (Hashtbl.hash label * 0x9E3779B97F4A7C1))

  let int t n =
    if n <= 0 then invalid_arg "Fault.Rng.int";
    bits t mod n

  (* [mask + 1] is 2^62, which overflows a 63-bit native int — scale by
     ldexp instead. *)
  let float t = Stdlib.ldexp (Stdlib.float_of_int (bits t)) (-62)

  let coin t p =
    let u = float t in
    p > 0. && u < p
end

module Plan = struct
  type window = { w_dev : string; w_start_ns : int; w_len_ns : int }

  type t = {
    p_seed : int;
    p_corrupt : float;
    p_truncate : float;
    p_ttl0 : float;
    p_badcksum : float;
    p_badlen : float;
    p_runt : float;
    p_nic_stall : window list;
    p_pci_stall : window list;
    p_quarantine : int;
  }

  let default_quarantine = 8

  let default =
    {
      p_seed = 1;
      p_corrupt = 0.;
      p_truncate = 0.;
      p_ttl0 = 0.;
      p_badcksum = 0.;
      p_badlen = 0.;
      p_runt = 0.;
      p_nic_stall = [];
      p_pci_stall = [];
      p_quarantine = default_quarantine;
    }

  let is_null t =
    t.p_corrupt = 0. && t.p_truncate = 0. && t.p_ttl0 = 0.
    && t.p_badcksum = 0. && t.p_badlen = 0. && t.p_runt = 0.
    && t.p_nic_stall = [] && t.p_pci_stall = []

  let parse_prob key v =
    match float_of_string_opt v with
    | Some f when f >= 0. && f <= 1. -> Ok f
    | Some _ -> Error (Printf.sprintf "%s: probability %s out of [0,1]" key v)
    | None -> Error (Printf.sprintf "%s: bad probability %S" key v)

  (* DEV@START_US:LEN_US *)
  let parse_window key v =
    let fail () =
      Error (Printf.sprintf "%s: bad window %S (want DEV@START_US:LEN_US)" key v)
    in
    match String.index_opt v '@' with
    | None -> fail ()
    | Some at -> (
        let dev = String.sub v 0 at in
        let rest = String.sub v (at + 1) (String.length v - at - 1) in
        match String.index_opt rest ':' with
        | None -> fail ()
        | Some colon -> (
            let start = String.sub rest 0 colon in
            let len =
              String.sub rest (colon + 1) (String.length rest - colon - 1)
            in
            match (int_of_string_opt start, int_of_string_opt len) with
            | Some s, Some l when s >= 0 && l > 0 && dev <> "" ->
                Ok { w_dev = dev; w_start_ns = s * 1000; w_len_ns = l * 1000 }
            | _ -> fail ()))

  let parse ?seed spec =
    let ( let* ) = Result.bind in
    let settings =
      String.split_on_char ',' spec
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    let* t =
      List.fold_left
        (fun acc setting ->
          let* t = acc in
          match String.index_opt setting '=' with
          | None -> Error (Printf.sprintf "bad setting %S (want key=value)" setting)
          | Some i -> (
              let key = String.sub setting 0 i in
              let v =
                String.sub setting (i + 1) (String.length setting - i - 1)
              in
              match key with
              | "corrupt" ->
                  let* f = parse_prob key v in
                  Ok { t with p_corrupt = f }
              | "truncate" ->
                  let* f = parse_prob key v in
                  Ok { t with p_truncate = f }
              | "ttl0" ->
                  let* f = parse_prob key v in
                  Ok { t with p_ttl0 = f }
              | "badcksum" ->
                  let* f = parse_prob key v in
                  Ok { t with p_badcksum = f }
              | "badlen" ->
                  let* f = parse_prob key v in
                  Ok { t with p_badlen = f }
              | "runt" ->
                  let* f = parse_prob key v in
                  Ok { t with p_runt = f }
              | "nic-stall" ->
                  let* w = parse_window key v in
                  Ok { t with p_nic_stall = t.p_nic_stall @ [ w ] }
              | "pci-stall" ->
                  let* w = parse_window key v in
                  Ok { t with p_pci_stall = t.p_pci_stall @ [ w ] }
              | "seed" -> (
                  match int_of_string_opt v with
                  | Some s -> Ok { t with p_seed = s }
                  | None -> Error (Printf.sprintf "seed: bad integer %S" v))
              | "quarantine" -> (
                  match int_of_string_opt v with
                  | Some n when n >= 0 -> Ok { t with p_quarantine = n }
                  | _ -> Error (Printf.sprintf "quarantine: bad count %S" v))
              | _ -> Error (Printf.sprintf "unknown fault key %S" key)))
        (Ok default) settings
    in
    let* () =
      if t.p_ttl0 +. t.p_badcksum +. t.p_badlen +. t.p_runt > 1. then
        Error "ttl0+badcksum+badlen+runt probabilities exceed 1"
      else Ok ()
    in
    match seed with None -> Ok t | Some s -> Ok { t with p_seed = s }

  let to_string t =
    let b = Buffer.create 64 in
    let add fmt = Printf.ksprintf (fun s ->
        if Buffer.length b > 0 then Buffer.add_char b ',';
        Buffer.add_string b s) fmt
    in
    if t.p_seed <> default.p_seed then add "seed=%d" t.p_seed;
    let prob key v = if v > 0. then add "%s=%g" key v in
    prob "corrupt" t.p_corrupt;
    prob "truncate" t.p_truncate;
    prob "ttl0" t.p_ttl0;
    prob "badcksum" t.p_badcksum;
    prob "badlen" t.p_badlen;
    prob "runt" t.p_runt;
    List.iter
      (fun w ->
        add "nic-stall=%s@%d:%d" w.w_dev (w.w_start_ns / 1000)
          (w.w_len_ns / 1000))
      t.p_nic_stall;
    List.iter
      (fun w ->
        add "pci-stall=%s@%d:%d" w.w_dev (w.w_start_ns / 1000)
          (w.w_len_ns / 1000))
      t.p_pci_stall;
    if t.p_quarantine <> default.p_quarantine then
      add "quarantine=%d" t.p_quarantine;
    Buffer.contents b

  let stall_until windows ~dev ~now_ns =
    List.fold_left
      (fun acc w ->
        if
          w.w_dev = dev && now_ns >= w.w_start_ns
          && now_ns < w.w_start_ns + w.w_len_ns
        then
          let until = w.w_start_ns + w.w_len_ns in
          match acc with
          | Some u when u >= until -> acc
          | _ -> Some until
        else acc)
      None windows
end

module Counters = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 8

  let bump t kind =
    match Hashtbl.find_opt t kind with
    | Some r -> incr r
    | None -> Hashtbl.replace t kind (ref 1)

  let to_list t =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let total t = Hashtbl.fold (fun _ r acc -> acc + !r) t 0
end

module Injector = struct
  type t = {
    i_plan : Plan.t;
    i_root : Rng.t;
    i_streams : (string, Rng.t) Hashtbl.t;
    i_counts : Counters.t;
  }

  let create plan =
    {
      i_plan = plan;
      i_root = Rng.create ~seed:plan.Plan.p_seed;
      i_streams = Hashtbl.create 8;
      i_counts = Counters.create ();
    }

  let plan t = t.i_plan
  let counters t = Counters.to_list t.i_counts
  let total t = Counters.total t.i_counts

  let stream t name =
    match Hashtbl.find_opt t.i_streams name with
    | Some r -> r
    | None ->
        let r = Rng.split t.i_root name in
        Hashtbl.replace t.i_streams name r;
        r

  let ip_off = Headers.Ether.header_length

  (* One generation fault at most, selected by a single uniform draw over
     the cumulative probabilities — mirrors how a real damaged sender
     emits one kind of broken frame at a time. *)
  let mangle_tx t ~stream:name p =
    let plan = t.i_plan in
    let rng = stream t name in
    let u = Rng.float rng in
    let ip_ok = Packet.length p >= ip_off + Headers.Ip.min_header_length in
    let c1 = plan.Plan.p_ttl0 in
    let c2 = c1 +. plan.Plan.p_badcksum in
    let c3 = c2 +. plan.Plan.p_badlen in
    let c4 = c3 +. plan.Plan.p_runt in
    if u < c1 && ip_ok then begin
      Headers.Ip.set_ttl ~off:ip_off p 0;
      Headers.Ip.update_checksum ~off:ip_off p;
      Counters.bump t.i_counts "ttl0"
    end
    else if u < c2 && ip_ok then begin
      (* Flip all checksum bits: guaranteed wrong for a valid header. *)
      let cksum = Packet.get_u16 p (ip_off + 10) in
      Packet.set_u16 p (ip_off + 10) (cksum lxor 0xffff);
      Counters.bump t.i_counts "badcksum"
    end
    else if u < c3 && ip_ok then begin
      (* Header length nibble 4 => 16 bytes, below the IPv4 minimum. *)
      Packet.set_u8 p ip_off 0x44;
      Headers.Ip.update_checksum ~off:ip_off p;
      Counters.bump t.i_counts "badlen"
    end
    else if u < c4 && Packet.length p > 1 then begin
      let keep = 1 + Rng.int rng (min (Packet.length p - 1) 13) in
      Packet.take p (Packet.length p - keep);
      Counters.bump t.i_counts "runt"
    end

  let mangle_wire t ~stream:name p =
    let plan = t.i_plan in
    let rng = stream t name in
    (* Draw both coins unconditionally so stream positions do not depend
       on which faults are enabled. *)
    let corrupt = Rng.coin rng plan.Plan.p_corrupt in
    let truncate = Rng.coin rng plan.Plan.p_truncate in
    if corrupt && Packet.length p > 0 then begin
      let pos = Rng.int rng (Packet.length p) in
      let bit = Rng.int rng 8 in
      Packet.set_u8 p pos (Packet.get_u8 p pos lxor (1 lsl bit));
      Counters.bump t.i_counts "corrupt"
    end;
    if truncate && Packet.length p > 1 then begin
      let cut = 1 + Rng.int rng (Packet.length p - 1) in
      Packet.take p cut;
      Counters.bump t.i_counts "truncate"
    end
end
