(** DIR-24-8-style longest-prefix-match table for production-scale
    routing tables (1M+ routes).

    The structure is the classic two-stage compressed multibit trie from
    "Routing Lookups in Hardware at Memory Access Speeds" (Gupta,
    Lin, McKeown, INFOCOM 1998), as deployed in software by DPDK's
    [rte_lpm]: a flat stage-1 table indexed by the top address bits
    resolves most lookups in one memory touch; prefixes longer than the
    stage-1 stride chain into 256-entry leaf blocks, one extra touch per
    8-bit level. With the default stride of 24 this is exactly DIR-24-8:
    every lookup costs one or two memory touches, independent of table
    size.

    Both stages live in [Bigarray] slabs off the OCaml heap, so a
    million-route table adds nothing to the GC's scanning load and
    survives domain-local use without write barriers. Entries are 31-bit
    (int32) words: a leaf-pointer bit, and for terminal entries the
    owning prefix length (6 bits, so incremental updates know which
    covering route wrote each slot) plus a next-hop index (21 bits). The
    (gateway, port) next-hops themselves sit in two plain int arrays
    indexed by that 21-bit handle.

    A table is owned by one domain at a time (like the runtime's packet
    pools): lookups are read-only and re-entrant, but add/remove and
    [lookup_batch] (which uses internal scratch) must not race. *)

type t

val create : ?stride1:int -> unit -> t
(** [create ()] — an empty table. [stride1] is the number of address
    bits covered by the flat stage-1 table: 24 (the default, 16M
    entries, at most 2 touches per lookup) or 16 (64K entries, at most
    3 touches — the economical choice for small tables). Raises
    [Invalid_argument] for any other stride. *)

val stride1 : t -> int
val nroutes : t -> int

val leaf_blocks : t -> int
(** Live (allocated and in-use) 256-entry leaf blocks. *)

val memory_bytes : t -> int
(** Bytes held by the table: both Bigarray stages plus the next-hop
    arrays (allocated capacity, not just in-use). *)

val add :
  t -> addr:int -> len:int -> gw:int -> port:int -> [ `Added | `Duplicate ]
(** [add t ~addr ~len ~gw ~port] inserts the route [addr/len] (addr is
    masked to [len] bits internally). A route with the same [addr/len]
    already present wins: the insert is refused with [`Duplicate] —
    first-declared-wins, matching the linear table's scan order.
    [gw = 0] means no gateway. Raises [Invalid_argument] if [len] is
    outside 0..32, [port < 0], or the table is full (2^21-2 routes). *)

val remove : t -> addr:int -> len:int -> bool
(** [remove t ~addr ~len] deletes the route, restoring every slot it
    owned to the next-best covering route, and compacts leaf blocks
    that become uniform. [false] if no such route. *)

val iter_routes :
  t -> (addr:int -> len:int -> gw:int -> port:int -> unit) -> unit
(** Visit every live route, in unspecified order — e.g. to rebuild the
    table at a different stride once it outgrows a small stage 1. *)

(** {2 Lookup}

    The hot path avoids allocation: [lookup] returns a packed immediate
    int carrying the next-hop handle and the number of memory touches
    (1 on a stage-1 hit, +1 per chained leaf level) — the unit the
    cost-model's [W_lookup] charges. *)

val lookup : t -> int -> int
(** [lookup t dst] — longest-prefix match of the 32-bit address [dst].
    Decode the packed result with the accessors below. *)

val result_found : int -> bool
val result_nh : int -> int
(** The next-hop handle; only meaningful when [result_found]. *)

val result_touches : int -> int

val gw : t -> int -> int
(** Gateway of a next-hop handle (0 = none). *)

val port : t -> int -> int

val lookup_batch : t -> int array -> int array -> int -> int
(** [lookup_batch t dsts out n] resolves [dsts.(0..n-1)] into
    [out.(0..n-1)] (the next-hop handle, or -1 on a miss) and returns
    the summed memory touches. Two-pass structure: the first pass
    streams every stage-1 read back-to-back (the software-prefetch
    pattern — independent loads the CPU can overlap), the second chases
    only the entries that hit a leaf pointer. Results are identical to
    [n] scalar {!lookup}s, touch count included. *)
