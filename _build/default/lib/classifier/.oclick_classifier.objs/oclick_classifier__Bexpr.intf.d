lib/classifier/bexpr.mli: Tree
