lib/graph/spec.mli:
