(* Cross-element match-action fusion: see oclick_fdd.mli for the
   overview. The builder symbolically executes a push region over the
   elements' Region.sem descriptions, grafting every classifier tree it
   meets (offsets translated by the accumulated Strip shift) into one
   forwarding decision diagram whose leaves are fused action sequences.

   Exactness is the whole game. Every leaf action replays the
   interpreted transfer protocol hop by hop — quarantine check and
   transfer report on entering each collapsed element, the element's
   effect under the same fault containment the interpreted connection
   provides, classification work charged with the per-path visited
   count the interpreted walk would have counted — so outcome totals,
   drop reasons, and per-hop obs ledgers are byte-identical to the
   interpreted run. Tests are hoisted above effects, which is sound
   because (a) sem effects never change bytes a hoisted test reads
   (Strip only shifts, and shifted offsets read the same bytes through
   the shared zero-fill reader, Tree.packet_read), (b) elements that
   can rewrite bytes or lengths mark themselves barriers and stop
   further hoisting, and (c) a failed guard stops its leaf action
   before any downstream effect, and every leaf sharing that action
   prefix behaves identically up to the failure point. *)

module Packet = Oclick_packet.Packet
module Tree = Oclick_classifier.Tree
module Codegen = Oclick_classifier.Codegen
module Element = Oclick_runtime.Element
module Region = Oclick_runtime.Region
module Hooks = Oclick_runtime.Hooks

type ctx = {
  fd_elements : Element.t array;
  fd_out : (int * int) option array array;
  fd_conn : int -> int -> Packet.t -> unit;
  fd_lean_transfer : bool;
  fd_lean_work : bool;
  fd_on_transfer : Hooks.transfer -> Packet.t -> unit;
}

type region = {
  rg_entry : string;
  rg_members : string list;
  rg_nodes : int;
  rg_actions : int;
}

(* Path expansion of classifier DAGs can blow up; past these budgets the
   region is abandoned and the compiler falls back to per-element
   fusion, which is always available. *)
let node_budget = 4096
let action_budget = 512

exception Too_big

(* A leaf action is a sequence of op keys plus an exit. Keys (not
   closures) so structurally identical actions — common once charges
   are specialized away under lean hooks — share one compiled body. *)
type opk =
  | K_enter of int * int * int * int  (* src, src port, dst, dst port *)
  | K_charge of int * int  (* classifier element, visited count *)
  | K_eff of int  (* the element's sem effect *)
  | K_invalid of int  (* the element's classified-to-no-output sink *)

type exitk =
  | X_conn of int * int  (* leave through a compiled connection *)
  | X_drop of int * int  (* unconnected port outside the wiring table *)
  | X_route of int  (* route-lookup leaf *)
  | X_none  (* path already consumed by a K_invalid *)

(* Path constraints for redundancy elimination — the optimization that
   makes a cascade collapse rather than merely concatenate. A tree test
   is identified by its (translated offset, mask) read; along one
   diagram path each read has either a known masked value (we sit under
   its yes branch) or a set of excluded values (under no branches). A
   regrafted test that repeats a decided read resolves immediately, so
   tests repeated across cascaded elements cost nothing per packet.
   Sound because reads are pure (zero-fill past the end included) and
   byte-mutating stages are barriers that stop tree absorption. *)
module FMap = Map.Make (struct
  type t = int * int

  let compare = compare
end)

type fact = Known of int | Excluded of int list

let build ctx entry =
  let el i = ctx.fd_elements.(i) in
  let nodes = ref [] in
  let ncount = ref 0 in
  let interned : (int * int * int * Tree.target * Tree.target, Tree.target)
      Hashtbl.t =
    Hashtbl.create 64
  in
  let mk_node ~offset ~mask ~value yes no =
    if yes = no then yes
    else begin
      let key = (offset, mask, value, yes, no) in
      match Hashtbl.find_opt interned key with
      | Some t -> t
      | None ->
          if !ncount >= node_budget then raise Too_big;
          let j = !ncount in
          incr ncount;
          nodes := { Tree.offset; mask; value; yes; no } :: !nodes;
          let t = Tree.Node j in
          Hashtbl.add interned key t;
          t
    end
  in
  let actions = ref [] in
  let acount = ref 0 in
  let action_memo : (opk list * exitk, int) Hashtbl.t = Hashtbl.create 16 in
  let leaf_of ops exitk =
    let key = (List.rev ops, exitk) in
    match Hashtbl.find_opt action_memo key with
    | Some k -> Tree.Leaf k
    | None ->
        if !acount >= action_budget then raise Too_big;
        let k = !acount in
        incr acount;
        actions := key :: !actions;
        Hashtbl.add action_memo key k;
        Tree.Leaf k
  in
  let members = Hashtbl.create 8 in
  (* The symbolic state: [shift] translates downstream tree offsets past
     the Strips seen so far; [paint] is the statically known paint color
     (for folding PaintSwitch); [barrier] forbids hoisting further tests
     once a byte/length-mutating stage was absorbed; [path] breaks
     cycles; [ops] is the reversed action prefix. *)
  let rec enter_element ~from:(i, port) (j, dst_port) ~shift ~paint ~barrier
      ~path ~ops ~facts =
    let absorbable =
      (not (List.mem j path))
      && (el i)#mangle_fn = None
      &&
      match (el j)#region_sem with
      | None -> false
      | Some (Region.Classify _) -> not barrier
      | Some (Region.Paint_switch _) -> paint <> None
      | Some _ -> true
    in
    if not absorbable then leaf_of ops (X_conn (i, port))
    else begin
      Hashtbl.replace members j ();
      let ops = K_enter (i, port, j, dst_port) :: ops in
      run_element j ~shift ~paint ~barrier ~path:(j :: path) ~ops ~facts
    end
  and run_element j ~shift ~paint ~barrier ~path ~ops ~facts =
    match (el j)#region_sem with
    | None -> assert false (* only absorbable elements are run *)
    | Some (Region.Classify { cl_tree; _ }) ->
        graft j cl_tree cl_tree.Tree.root 0 ~shift ~paint ~barrier ~path ~ops
          ~facts
    | Some (Region.Set_paint c) ->
        continue j 0 ~shift ~paint:(Some c) ~barrier ~path
          ~ops:(K_eff j :: ops) ~facts
    | Some (Region.Paint_switch _) -> (
        match paint with
        | Some c when c >= 0 && c < (el j)#noutputs ->
            continue j c ~shift ~paint ~barrier ~path ~ops ~facts
        | Some _ -> leaf_of (K_invalid j :: ops) X_none
        | None -> assert false)
    | Some (Region.Guard { gd_shift; gd_barrier; _ }) ->
        (* A barrier may rewrite bytes, so facts about reads stop being
           true past it. (Tree absorption stops there too, so the facts
           could never be consulted — dropping them keeps the invariant
           local.) *)
        continue j 0 ~shift:(shift + gd_shift) ~paint
          ~barrier:(barrier || gd_barrier) ~path ~ops:(K_eff j :: ops)
          ~facts:(if gd_barrier then FMap.empty else facts)
    | Some (Region.Mutate _) ->
        continue j 0 ~shift ~paint ~barrier ~path ~ops:(K_eff j :: ops) ~facts
    | Some (Region.Route _) -> leaf_of ops (X_route j)
  and continue j port ~shift ~paint ~barrier ~path ~ops ~facts =
    let outs = ctx.fd_out.(j) in
    if port < 0 || port >= Array.length outs then
      leaf_of ops (X_drop (j, port))
    else
      match outs.(port) with
      | None -> leaf_of ops (X_conn (j, port))
      | Some (m, mport) ->
          enter_element ~from:(j, port) (m, mport) ~shift ~paint ~barrier
            ~path ~ops ~facts
  and graft j tree target visited ~shift ~paint ~barrier ~path ~ops ~facts =
    match target with
    | Tree.Leaf k ->
        let ops =
          if ctx.fd_lean_work then ops else K_charge (j, visited) :: ops
        in
        if k >= 0 && k < (el j)#noutputs then
          continue j k ~shift ~paint ~barrier ~path ~ops ~facts
        else leaf_of (K_invalid j :: ops) X_none
    | Tree.Node ni -> (
        let n = tree.Tree.nodes.(ni) in
        let offset = n.Tree.offset + shift in
        let key = (offset, n.Tree.mask) in
        let v = n.Tree.value in
        (* A decided test is pruned from the diagram but still counted in
           [visited]: the element's own interpreted walk visits the node
           regardless, and the K_charge must replay that exact count. *)
        let decided =
          match FMap.find_opt key facts with
          | Some (Known w) -> Some (w = v)
          | Some (Excluded ws) -> if List.mem v ws then Some false else None
          | None -> None
        in
        match decided with
        | Some true ->
            graft j tree n.Tree.yes (visited + 1) ~shift ~paint ~barrier
              ~path ~ops ~facts
        | Some false ->
            graft j tree n.Tree.no (visited + 1) ~shift ~paint ~barrier ~path
              ~ops ~facts
        | None ->
            let excluded =
              match FMap.find_opt key facts with
              | Some (Excluded ws) -> ws
              | _ -> []
            in
            let yes =
              graft j tree n.Tree.yes (visited + 1) ~shift ~paint ~barrier
                ~path ~ops
                ~facts:(FMap.add key (Known v) facts)
            in
            let no =
              graft j tree n.Tree.no (visited + 1) ~shift ~paint ~barrier
                ~path ~ops
                ~facts:(FMap.add key (Excluded (v :: excluded)) facts)
            in
            mk_node ~offset ~mask:n.Tree.mask ~value:v yes no)
  in
  match (el entry)#region_sem with
  | None | Some (Region.Paint_switch _) | Some (Region.Route _) ->
      (* No cascade can start here: unknown paint can't fold, and a
         bare route lookup is already one fused closure via its own
         [fuse]. *)
      None
  | Some _ -> (
      match
        run_element entry ~shift:0 ~paint:None ~barrier:false ~path:[ entry ]
          ~ops:[] ~facts:FMap.empty
      with
      | exception Too_big -> None
      | root ->
          if Hashtbl.length members = 0 then
            (* The region never crossed an element boundary; the
               element's own fuse body is the specialized (and cheaper)
               form of the same semantics. *)
            None
          else begin
            (* --- compile op keys to closures, memoized per key ------- *)
            let charge_of j =
              match (el j)#region_sem with
              | Some (Region.Classify { cl_charge; _ }) -> cl_charge
              | _ -> assert false
            in
            let invalid_of j =
              match (el j)#region_sem with
              | Some (Region.Classify { cl_invalid; _ }) -> cl_invalid
              | Some (Region.Paint_switch { ps_invalid }) -> ps_invalid
              | _ -> assert false
            in
            let eff_of j =
              match (el j)#region_sem with
              | Some (Region.Set_paint c) ->
                  fun p ->
                    (Packet.anno p).Packet.paint <- c;
                    true
              | Some (Region.Guard { gd_run; _ }) -> gd_run
              | Some (Region.Mutate f) ->
                  fun p ->
                    f p;
                    true
              | _ -> assert false
            in
            (* Per-packet fault containment identical to the compiled
               connection's: the fault is recorded against the element
               whose code raised, the packet becomes an accounted
               "element fault" drop of that element, and the leaf action
               stops. *)
            let contain j f =
              let dst = el j in
              let _, consec = dst#degrade_cells in
              fun p ->
                match f p with
                | continue ->
                    consec := 0;
                    continue
                | exception e when not (Element.fatal e) ->
                    dst#record_fault (Printexc.to_string e);
                    dst#drop ~reason:"element fault" p;
                    false
            in
            let op_tbl : (opk, Packet.t -> bool) Hashtbl.t =
              Hashtbl.create 16
            in
            let op_fn key =
              match Hashtbl.find_opt op_tbl key with
              | Some f -> f
              | None ->
                  let f =
                    match key with
                    | K_enter (i, port, j, dst_port) ->
                        let src = el i and dst = el j in
                        let quarantined, consec = dst#degrade_cells in
                        if ctx.fd_lean_transfer then
                          fun p ->
                            if !quarantined then begin
                              src#drop ~reason:"quarantined element" p;
                              false
                            end
                            else begin
                              consec := 0;
                              true
                            end
                        else
                          let record =
                            {
                              Hooks.tr_src_idx = src#index;
                              tr_src_class = src#code_class;
                              tr_src_port = port;
                              tr_dst_idx = dst#index;
                              tr_dst_class = dst#class_name;
                              tr_dst_port = dst_port;
                              tr_direct = src#direct_dispatch;
                              tr_pull = false;
                            }
                          in
                          let on_transfer = ctx.fd_on_transfer in
                          fun p ->
                            if !quarantined then begin
                              src#drop ~reason:"quarantined element" p;
                              false
                            end
                            else begin
                              on_transfer record p;
                              consec := 0;
                              true
                            end
                    | K_charge (j, visited) ->
                        let charge = charge_of j in
                        contain j (fun _p ->
                            charge visited;
                            true)
                    | K_eff j -> contain j (eff_of j)
                    | K_invalid j ->
                        let invalid = invalid_of j in
                        contain j (fun p ->
                            invalid p;
                            false)
                  in
                  Hashtbl.replace op_tbl key f;
                  f
            in
            let exit_fn = function
              | X_conn (i, port) -> ctx.fd_conn i port
              | X_drop (j, port) ->
                  let reason = Printf.sprintf "unconnected output %d" port in
                  fun p -> (el j)#drop ~reason p
              | X_route j -> (
                  match (el j)#region_sem with
                  | Some (Region.Route { rt_make }) ->
                      let lookup = rt_make ~lean_work:ctx.fd_lean_work in
                      let nout = (el j)#noutputs in
                      let outs =
                        Array.init nout (fun port -> ctx.fd_conn j port)
                      in
                      let dst = el j in
                      let _, consec = dst#degrade_cells in
                      fun p -> (
                        match lookup p with
                        | port ->
                            consec := 0;
                            if port >= 0 then outs.(port) p
                        | exception e when not (Element.fatal e) ->
                            dst#record_fault (Printexc.to_string e);
                            dst#drop ~reason:"element fault" p)
                  | _ -> assert false)
              | X_none -> fun _ -> ()
            in
            let compile_action (ops, exitk) =
              let steps = Array.of_list (List.map op_fn ops) in
              let exit = exit_fn exitk in
              let n = Array.length steps in
              if n = 0 then exit
              else
                fun p ->
                  let rec go i =
                    if i >= n then exit p else if steps.(i) p then go (i + 1)
                  in
                  go 0
            in
            let action_arr =
              Array.map compile_action
                (Array.of_list (List.rev !actions))
            in
            let fused =
              {
                Tree.nodes = Array.of_list (List.rev !nodes);
                root;
                noutputs = !acount;
              }
            in
            let body =
              Codegen.closures fused ~leaf:(fun k ->
                  let act = action_arr.(k) in
                  fun p _visited -> act p)
            in
            let member_names =
              List.sort compare (Hashtbl.fold (fun j () acc -> j :: acc) members [])
              |> List.map (fun j -> (el j)#name)
            in
            Some
              ( body,
                {
                  rg_entry = (el entry)#name;
                  rg_members = member_names;
                  rg_nodes = !ncount;
                  rg_actions = !acount;
                } )
          end)
