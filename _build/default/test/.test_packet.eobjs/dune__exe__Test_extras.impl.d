test/test_extras.ml: Alcotest Filename Gen List Oclick_elements Oclick_packet Oclick_runtime Option Printf QCheck QCheck_alcotest Result String Sys
